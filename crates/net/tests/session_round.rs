//! Session-layer tests: multi-round execution over persistent
//! connections, per-round state isolation, dropout-then-rejoin, and
//! typed stale-frame rejection on both sides of the wire.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dordis_net::codec::{Envelope, StageTag};
use dordis_net::coordinator::{
    run_coordinator, CollectMode, CoordinatorConfig, DropKind, NetRoundReport,
};
use dordis_net::faults::FaultPlan;
use dordis_net::runtime::{
    round_rng_seed, run_client, run_session_client, ClientOptions, ClientRunOutcome, FailAction,
    FailPoint, FailStage, SessionClientOptions, SessionEndKind,
};
use dordis_net::session::{Seating, Session, SessionConfig};
use dordis_net::transport::{Channel, LoopbackChannel, LoopbackHub, LossProfile, ThrottledChannel};
use dordis_net::NetError;
use dordis_secagg::client::ClientInput;
use dordis_secagg::driver::{run_round, DropStage, DropoutSchedule, RoundSpec};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::server::RoundOutcome;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};
use dordis_telemetry::Telemetry;

mod common;
use common::ENGINES;

const BITS: u32 = 16;
const DIM: usize = 16;
const SEED: u64 = 7_171_717;
const N: u32 = 5;
const CHUNKS: usize = 4;

fn params_for_round(round: u64) -> RoundParams {
    RoundParams {
        round,
        clients: (0..N).collect(),
        threshold: 3,
        bit_width: BITS,
        vector_len: DIM,
        noise_components: 0,
        threat_model: ThreatModel::SemiHonest,
        graph: MaskingGraph::Complete,
    }
}

/// Deterministic per-(client, round) input so every session round has a
/// distinct expected aggregate.
fn input_for(id: ClientId, round: u64) -> ClientInput {
    let mask = (1u64 << BITS) - 1;
    ClientInput {
        vector: (0..DIM)
            .map(|i| (u64::from(id) * 131 + round * 977 + i as u64 * 17) & mask)
            .collect(),
        noise_seeds: Vec::new(),
    }
}

/// The same round through the in-memory driver, with the session's
/// per-round seed derivation.
fn driver_round(round: u64, drops: &[ClientId]) -> RoundOutcome {
    let mut dropout = DropoutSchedule::none();
    for &id in drops {
        dropout.drop_at(id, DropStage::BeforeMaskedInput);
    }
    let inputs: BTreeMap<ClientId, ClientInput> =
        (0..N).map(|id| (id, input_for(id, round))).collect();
    let (outcome, _) = run_round(RoundSpec {
        params: params_for_round(round),
        inputs,
        dropout,
        rng_seed: round_rng_seed(SEED, round),
    })
    .expect("driver round");
    outcome
}

/// Runs an R-round roster session over persistent loopback connections;
/// `dropper(round)` names the client that fails mid-stream that round
/// (it reconnects and re-joins the next round).
fn run_session(
    rounds: u64,
    mode: CollectMode,
    workers: usize,
    dropper: impl Fn(u64) -> Option<(ClientId, u16)> + Send + Sync + 'static,
) -> Vec<NetRoundReport> {
    let (hub, mut acceptor) = LoopbackHub::new();
    let dropper = Arc::new(dropper);
    let mut handles = Vec::new();
    for id in 0..N {
        let hub = hub.clone();
        let dropper = Arc::clone(&dropper);
        handles.push(std::thread::spawn(move || -> Result<u32, String> {
            let mut participated = 0u32;
            loop {
                let mut chan = hub
                    .connect(&format!("c{id}"))
                    .map_err(|e| format!("connect: {e}"))?;
                let opts = SessionClientOptions {
                    id,
                    rng_seed: SEED,
                    recv_timeout: Duration::from_secs(30),
                    silent_linger: Duration::from_secs(1),
                };
                let report = run_session_client(
                    &mut chan,
                    &opts,
                    |_| None,
                    |r| {
                        dropper(r).and_then(|(who, k)| {
                            (who == id).then_some(FailPoint {
                                stage: FailStage::MaskedInputAfterChunks(k),
                                action: FailAction::Disconnect,
                            })
                        })
                    },
                    |r, _params, _cohort, _payload| Ok(input_for(id, r)),
                    |_| None,
                )
                .map_err(|e| format!("client {id}: {e}"))?;
                participated += report.rounds.len() as u32;
                match report.end {
                    SessionEndKind::Ended => return Ok(participated),
                    SessionEndKind::Failed { .. } => continue, // rejoin
                    other => return Err(format!("client {id}: unexpected end {other:?}")),
                }
            }
        }));
    }

    let cfg = SessionConfig {
        first_round: 1,
        rounds,
        join_timeout: Duration::from_secs(10),
        stage_timeout: Duration::from_secs(10),
        chunks: CHUNKS,
        chunk_compute: None,
        tick: CoordinatorConfig::DEFAULT_TICK,
        mode,
        workers,
        shards: 1,
        ingress_budget: 0,
        announce: true,
        population: (0..N).collect(),
        seating: Seating::Roster,
        params_for: Box::new(|round, _| params_for_round(round)),
        // Enabled so every engine combination exercises the span /
        // metrics probes alongside the protocol itself.
        telemetry: Telemetry::enabled(),
        metrics_addr: None,
        replica: None,
        faults: FaultPlan::none(),
    };
    let mut session = Session::new(&mut acceptor, cfg).expect("session");
    let mut reports = Vec::new();
    for _ in 0..rounds {
        reports.push(session.run_round(&[]).expect("round"));
    }
    session.finish();
    for h in handles {
        h.join().expect("client thread").expect("client result");
    }
    reports
}

#[test]
fn multi_round_session_matches_per_round_driver() {
    // Both collection engines × serial and pooled unmasking: all four
    // must stay bit-equal to the in-memory driver.
    for (mode, workers) in ENGINES {
        let reports = run_session(3, mode, workers, |_| None);
        assert_eq!(reports.len(), 3);
        for (i, report) in reports.iter().enumerate() {
            let round = i as u64 + 1;
            // The round counter comes from the session, not a config
            // constant.
            assert_eq!(report.round, round, "{mode:?}");
            let mem = driver_round(round, &[]);
            assert_eq!(
                report.outcome.sum, mem.sum,
                "{mode:?}/{workers}w round {round}"
            );
            assert_eq!(report.outcome.survivors, mem.survivors);
            assert!(
                report.dropouts.is_empty(),
                "{mode:?}: {:?}",
                report.dropouts
            );
        }
        // Distinct rounds produce distinct aggregates (fresh per-round
        // state, per-round seeds).
        assert_ne!(reports[0].outcome.sum, reports[1].outcome.sum);

        // Per-round accounting rides in every report: the metrics
        // snapshot is this round's *delta*, so each round must show its
        // own uplink bytes and unmask jobs rather than a running total.
        for report in &reports {
            let m = report.metrics.as_ref().expect("metrics delta");
            assert!(
                m.get("dordis_frame_bytes_total{direction=\"in\",stage=\"MaskedInputCollection\"}")
                    > 0,
                "{mode:?}/{workers}w round {}: no uplink bytes in the delta",
                report.round
            );
            assert!(
                m.get("dordis_unmask_job_duration_ns::count") >= report.chunks as u64,
                "{mode:?}/{workers}w round {}: unmask jobs missing from the delta",
                report.round
            );
        }
        // The reactor counters in the report are per-round deltas; the
        // session-cumulative view rides alongside and must dominate
        // their sum.
        if matches!(mode, CollectMode::Reactor) {
            let cumulative = reports.last().unwrap().reactor_session.expect("cumulative");
            let mut summed = 0u64;
            for report in &reports {
                let delta = report.reactor.expect("per-round delta");
                assert!(delta.polls > 0, "{mode:?} round {}", report.round);
                summed += delta.polls;
            }
            assert!(
                summed <= cumulative.polls,
                "{mode:?}: per-round deltas ({summed}) exceed the cumulative count ({})",
                cumulative.polls
            );
        }
    }
}

#[test]
fn dropout_then_rejoin_completes_next_round() {
    // Client 3 drops mid-chunk-stream in round 1 (after 1 of 4 chunk
    // frames), reconnects, and completes rounds 2 and 3. Pooled
    // unmasking must survive the dropout-recovery path too (that is
    // where the pairwise re-expansion jobs come from).
    for (mode, workers) in ENGINES {
        let reports = run_session(3, mode, workers, |r| (r == 1).then_some((3, 1)));

        let r1 = &reports[0];
        assert!(!r1.outcome.survivors.contains(&3), "{mode:?}");
        assert_eq!(r1.outcome.dropped, vec![3], "{mode:?}");
        let detected = r1
            .dropouts
            .iter()
            .find(|d| d.client == 3)
            .expect("detected dropout");
        assert_eq!(detected.stage, "MaskedInputCollection");
        assert_eq!(detected.kind, DropKind::Disconnected);
        let mem1 = driver_round(1, &[3]);
        assert_eq!(r1.outcome.sum, mem1.sum, "{mode:?} dropout round");
        assert_eq!(r1.outcome.survivors, mem1.survivors);

        // Rejoined over a fresh connection: full cohort again, bit-equal
        // to the full-roster driver round.
        for (i, report) in reports.iter().enumerate().skip(1) {
            let round = i as u64 + 1;
            assert!(
                report.outcome.survivors.contains(&3),
                "{mode:?}: client 3 did not rejoin round {round}"
            );
            let mem = driver_round(round, &[]);
            assert_eq!(report.outcome.sum, mem.sum, "{mode:?} round {round}");
        }
    }
}

/// Rounds complete under a lossy data plane: every client's uplink
/// drops and reorders ~5% of its masked-input chunk frames
/// ([`ThrottledChannel::with_loss`]). A lost chunk surfaces exactly as
/// the paper's failure model says it should — a *detected* dropout at
/// the masked-input stage — and every round's aggregate stays bit-equal
/// to the in-memory driver run with those same dropouts. Reordered
/// chunks (carrying their chunk ids) must cost nothing at all.
#[test]
fn session_rounds_complete_under_packet_loss_and_reorder() {
    const ROUNDS: u64 = 3;
    let (hub, mut acceptor) = LoopbackHub::new();
    let mut handles = Vec::new();
    for id in 0..N {
        let hub = hub.clone();
        handles.push(std::thread::spawn(move || -> Result<(), String> {
            loop {
                let raw = hub
                    .connect(&format!("c{id}"))
                    .map_err(|e| format!("connect: {e}"))?;
                let mut chan = ThrottledChannel::new(Box::new(raw), u64::MAX, Duration::ZERO)
                    .with_loss(LossProfile {
                        drop_prob: 0.05,
                        reorder_prob: 0.05,
                        seed: 1_000 + u64::from(id),
                    });
                let opts = SessionClientOptions {
                    id,
                    rng_seed: SEED,
                    recv_timeout: Duration::from_secs(30),
                    silent_linger: Duration::from_secs(1),
                };
                let outcome = run_session_client(
                    &mut chan,
                    &opts,
                    |_| None,
                    |_| None,
                    |r, _params, _cohort, _payload| Ok(input_for(id, r)),
                    |_| None,
                );
                match outcome {
                    Ok(report) => match report.end {
                        SessionEndKind::Ended => return Ok(()),
                        SessionEndKind::Failed { .. } => continue,
                        other => return Err(format!("client {id}: unexpected end {other:?}")),
                    },
                    // A lost chunk gets this client dropped from the
                    // round; the coordinator closes its connection and
                    // the client redials to rejoin the next announce.
                    Err(NetError::Closed | NetError::Timeout) => continue,
                    Err(e) => return Err(format!("client {id}: {e}")),
                }
            }
        }));
    }

    let cfg = SessionConfig {
        first_round: 1,
        rounds: ROUNDS,
        join_timeout: Duration::from_secs(10),
        // Short: every lost chunk costs the coordinator exactly one
        // masked-stage deadline wait before the dropout is declared.
        stage_timeout: Duration::from_secs(3),
        chunks: CHUNKS,
        chunk_compute: None,
        tick: CoordinatorConfig::DEFAULT_TICK,
        mode: CollectMode::Reactor,
        workers: 0,
        shards: 1,
        ingress_budget: 0,
        announce: true,
        population: (0..N).collect(),
        seating: Seating::Roster,
        params_for: Box::new(|round, _| params_for_round(round)),
        telemetry: Telemetry::enabled(),
        metrics_addr: None,
        replica: None,
        faults: FaultPlan::none(),
    };
    let mut session = Session::new(&mut acceptor, cfg).expect("session");
    let mut reports = Vec::new();
    for _ in 0..ROUNDS {
        reports.push(session.run_round(&[]).expect("lossy round"));
    }
    session.finish();
    for h in handles {
        h.join().expect("client thread").expect("client result");
    }

    let mut total_dropped = 0usize;
    for report in &reports {
        // Every cohort member is accounted for: survivor or *detected*
        // dropout, nothing silent.
        let mut dropped = report.outcome.dropped.clone();
        dropped.sort_unstable();
        for &id in &dropped {
            assert!(
                report.dropouts.iter().any(|d| d.client == id),
                "round {}: client {id} dropped without a detection record",
                report.round
            );
        }
        total_dropped += dropped.len();
        // Enough survivors to decrypt — and their sum is bit-equal to
        // the in-memory driver with the identical dropout set.
        assert!(
            report.outcome.survivors.len() >= 3,
            "round {}: {:?}",
            report.round,
            report.outcome.survivors
        );
        let mem = driver_round(report.round, &dropped);
        assert_eq!(
            report.outcome.sum, mem.sum,
            "round {}: survivors-sum not bit-equal under loss",
            report.round
        );
        assert_eq!(
            report.outcome.survivors, mem.survivors,
            "round {}",
            report.round
        );
    }
    // The loss model actually bit: a 5% drop rate across 3 rounds of
    // 5 clients × 4 chunks is overwhelmingly unlikely to lose nothing
    // (and the seeds are fixed, so this is deterministic).
    assert!(
        total_dropped >= 1,
        "no dropouts under 5% loss — the injector did not fire"
    );
}

// ---------------------------------------------------------------------
// Typed stale-round rejection.
// ---------------------------------------------------------------------

#[test]
fn client_rejects_stale_round_frame_with_typed_error() {
    let (mut server_end, mut client_end) = LoopbackChannel::pair("stale");
    let client = std::thread::spawn(move || {
        let opts = ClientOptions {
            id: 0,
            rng_seed: SEED,
            fail: None,
            recv_timeout: Duration::from_secs(5),
            silent_linger: Duration::from_secs(1),
        };
        run_client(&mut client_end, &opts, |_| Ok(input_for(0, 5)), |_| None)
    });

    let deadline = Instant::now() + Duration::from_secs(5);
    // Join…
    let join = server_end.recv_deadline(deadline).unwrap();
    assert_eq!(Envelope::decode(&join).unwrap().stage, StageTag::Join);
    // …Setup for round 5…
    let params = params_for_round(5);
    server_end
        .send(
            &Envelope::new(
                StageTag::Setup,
                5,
                dordis_net::codec::encode_setup(&params, 1, N as u16, &[]),
            )
            .encode(),
        )
        .unwrap();
    // …the client advertises…
    let adv = server_end.recv_deadline(deadline).unwrap();
    assert_eq!(
        Envelope::decode(&adv).unwrap().stage,
        StageTag::AdvertiseKeys
    );
    // …and the server replies with a frame from round 4.
    server_end
        .send(&Envelope::new(StageTag::Roster, 4, Vec::new()).encode())
        .unwrap();

    match client.join().expect("client thread") {
        Err(NetError::StaleRound { got, expected }) => {
            assert_eq!(got, 4);
            assert_eq!(expected, 5);
        }
        other => panic!("expected NetError::StaleRound, got {other:?}"),
    }
}

/// A channel wrapper that duplicates the client's first AdvertiseKeys
/// frame with a *stale* round id just before the real one — the
/// coordinator must discard the stale copy (typed, counted) and file
/// the real frame, completing the round bit-equal to a clean run.
struct StaleInjector {
    inner: LoopbackChannel,
    injected: Arc<AtomicU32>,
}

impl Channel for StaleInjector {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        if self.injected.load(Ordering::SeqCst) == 0 {
            if let Ok(env) = Envelope::decode(frame) {
                if env.stage == StageTag::AdvertiseKeys {
                    self.injected.store(1, Ordering::SeqCst);
                    let stale = Envelope::new(StageTag::AdvertiseKeys, env.round - 1, env.body);
                    self.inner.send(&stale.encode())?;
                }
            }
        }
        self.inner.send(frame)
    }

    fn recv_deadline(&mut self, deadline: Instant) -> Result<Vec<u8>, NetError> {
        self.inner.recv_deadline(deadline)
    }

    fn peer(&self) -> String {
        self.inner.peer()
    }
}

#[test]
fn coordinator_discards_stale_frames_without_dropping_the_peer() {
    for mode in [CollectMode::Reactor, CollectMode::PollSweep] {
        let (hub, mut acceptor) = LoopbackHub::new();
        let injected = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for id in 0..N {
            let hub = hub.clone();
            let injected = Arc::clone(&injected);
            handles.push(std::thread::spawn(move || {
                let inner = hub.connect(&format!("c{id}")).expect("connect");
                let opts = ClientOptions {
                    id,
                    rng_seed: SEED,
                    fail: None,
                    recv_timeout: Duration::from_secs(20),
                    silent_linger: Duration::from_secs(1),
                };
                if id == 2 {
                    let mut chan = StaleInjector { inner, injected };
                    run_client(&mut chan, &opts, move |_| Ok(input_for(id, 5)), |_| None)
                } else {
                    let mut chan = inner;
                    run_client(&mut chan, &opts, move |_| Ok(input_for(id, 5)), |_| None)
                }
            }));
        }
        let report = run_coordinator(
            &mut acceptor,
            &CoordinatorConfig::new(
                params_for_round(5),
                Duration::from_secs(10),
                Duration::from_secs(10),
                1,
                None,
            )
            .with_mode(mode),
        )
        .expect("round");
        for h in handles {
            let outcome = h.join().expect("client thread").expect("client run");
            assert!(matches!(outcome, ClientRunOutcome::Finished { .. }));
        }
        assert_eq!(report.stale_frames, 1, "{mode:?}");
        assert!(
            report.dropouts.is_empty(),
            "{mode:?}: {:?}",
            report.dropouts
        );
        let mem = driver_round(5, &[]);
        assert_eq!(report.outcome.sum, mem.sum, "{mode:?}");
        assert_eq!(report.outcome.survivors, mem.survivors, "{mode:?}");
    }
}
