//! Sharded-session equivalence: partitioning the cohort across
//! parallel aggregation shards must stay bit-equal to the unsharded
//! in-memory driver for `S ∈ {1, 2, 4}` across the full engine grid —
//! including XNoise rounds, mid-stream dropout with rejoin, and
//! stale-round frames.
//!
//! Removal seeds are the one field that legitimately differs: each
//! shard recovers the range `(shard_dropped + 1)..=T`, a superset of
//! the union range `(union_dropped + 1)..=T`. Equivalence therefore
//! filters the merged seeds down to the union range before comparing.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dordis_crypto::prg::Seed;
use dordis_net::codec::{Envelope, StageTag};
use dordis_net::coordinator::{CollectMode, CoordinatorConfig, DropKind, NetRoundReport};
use dordis_net::faults::FaultPlan;
use dordis_net::runtime::{
    round_rng_seed, run_session_client, FailAction, FailPoint, FailStage, SessionClientOptions,
    SessionEndKind,
};
use dordis_net::session::{shard_of, shard_rosters, Seating, Session, SessionConfig};
use dordis_net::transport::{Channel, LoopbackChannel, LoopbackHub};
use dordis_net::NetError;
use dordis_secagg::client::ClientInput;
use dordis_secagg::driver::{run_round, DropStage, DropoutSchedule, RoundSpec};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::server::RoundOutcome;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};

use dordis_telemetry::Telemetry;

mod common;
use common::ENGINES;

const BITS: u32 = 16;
const DIM: usize = 16;
const SEED: u64 = 7_171_717;
// 12 clients: the splitmix64 partition gives shard sizes {7, 5} at
// S = 2 and {2, 3, 5, 2} at S = 4 — every shard keeps ≥ 2 members, so
// no grid point silently falls back to the unsharded path (pinned by
// `partition_keeps_every_shard_viable` below).
const N: u32 = 12;
const CHUNKS: usize = 4;
const NOISE_T: usize = 3;
/// Mid-stream dropout victim: lives in the largest shard at both
/// S = 2 and S = 4, so every shard keeps quorum after the drop.
const VICTIM: ClientId = 4;

fn params_for_round(round: u64, noise: bool) -> RoundParams {
    RoundParams {
        round,
        clients: (0..N).collect(),
        threshold: N as usize / 2 + 1,
        bit_width: BITS,
        vector_len: DIM,
        noise_components: if noise { NOISE_T } else { 0 },
        threat_model: ThreatModel::SemiHonest,
        graph: MaskingGraph::Complete,
    }
}

fn input_for(id: ClientId, round: u64, noise: bool) -> ClientInput {
    let mask = (1u64 << BITS) - 1;
    ClientInput {
        vector: (0..DIM)
            .map(|i| (u64::from(id) * 131 + round * 977 + i as u64 * 17) & mask)
            .collect(),
        noise_seeds: if noise {
            vec![[id as u8 + 1; 32]; NOISE_T + 1]
        } else {
            Vec::new()
        },
    }
}

/// The same round through the unsharded in-memory driver, with the
/// session's per-round seed derivation.
fn driver_round(round: u64, drops: &[ClientId], noise: bool) -> RoundOutcome {
    let mut dropout = DropoutSchedule::none();
    for &id in drops {
        dropout.drop_at(id, DropStage::BeforeMaskedInput);
    }
    let inputs: BTreeMap<ClientId, ClientInput> =
        (0..N).map(|id| (id, input_for(id, round, noise))).collect();
    let (outcome, _) = run_round(RoundSpec {
        params: params_for_round(round, noise),
        inputs,
        dropout,
        rng_seed: round_rng_seed(SEED, round),
    })
    .expect("driver round");
    outcome
}

/// Sorted removal seeds restricted to components `k > dropped` — the
/// union range a single coordinator would have recovered.
fn seeds_in_union_range(
    seeds: &[(ClientId, usize, Seed)],
    dropped: usize,
) -> Vec<(ClientId, usize, Seed)> {
    let mut out: Vec<_> = seeds
        .iter()
        .filter(|(_, k, _)| *k > dropped)
        .copied()
        .collect();
    out.sort_unstable_by_key(|(c, k, _)| (*c, *k));
    out
}

/// Runs an R-round roster session split across `shards` aggregation
/// shards; `dropper(round)` names a client that fails mid-chunk-stream
/// that round (it reconnects and re-joins the next round).
fn run_sharded_session(
    rounds: u64,
    mode: CollectMode,
    workers: usize,
    shards: usize,
    noise: bool,
    dropper: impl Fn(u64) -> Option<(ClientId, u16)> + Send + Sync + 'static,
) -> Vec<NetRoundReport> {
    let (hub, mut acceptor) = LoopbackHub::new();
    let dropper = Arc::new(dropper);
    let mut handles = Vec::new();
    for id in 0..N {
        let hub = hub.clone();
        let dropper = Arc::clone(&dropper);
        handles.push(std::thread::spawn(move || -> Result<(), String> {
            loop {
                let mut chan = hub
                    .connect(&format!("c{id}"))
                    .map_err(|e| format!("connect: {e}"))?;
                let opts = SessionClientOptions {
                    id,
                    rng_seed: SEED,
                    recv_timeout: Duration::from_secs(30),
                    silent_linger: Duration::from_secs(1),
                };
                let report = run_session_client(
                    &mut chan,
                    &opts,
                    |_| None,
                    |r| {
                        dropper(r).and_then(|(who, k)| {
                            (who == id).then_some(FailPoint {
                                stage: FailStage::MaskedInputAfterChunks(k),
                                action: FailAction::Disconnect,
                            })
                        })
                    },
                    |r, _params, _cohort, _payload| Ok(input_for(id, r, noise)),
                    |_| None,
                )
                .map_err(|e| format!("client {id}: {e}"))?;
                match report.end {
                    SessionEndKind::Ended => return Ok(()),
                    SessionEndKind::Failed { .. } => continue, // rejoin
                    other => return Err(format!("client {id}: unexpected end {other:?}")),
                }
            }
        }));
    }

    let cfg = SessionConfig {
        first_round: 1,
        rounds,
        join_timeout: Duration::from_secs(10),
        stage_timeout: Duration::from_secs(10),
        chunks: CHUNKS,
        chunk_compute: None,
        tick: CoordinatorConfig::DEFAULT_TICK,
        mode,
        workers,
        shards,
        ingress_budget: 0,
        announce: true,
        population: (0..N).collect(),
        seating: Seating::Roster,
        params_for: Box::new(move |round, _| params_for_round(round, noise)),
        telemetry: Telemetry::enabled(),
        metrics_addr: None,
        replica: None,
        faults: FaultPlan::none(),
    };
    let mut session = Session::new(&mut acceptor, cfg).expect("session");
    let mut reports = Vec::new();
    for _ in 0..rounds {
        reports.push(session.run_round(&[]).expect("round"));
    }
    session.finish();
    for h in handles {
        h.join().expect("client thread").expect("client result");
    }
    reports
}

#[test]
fn partition_keeps_every_shard_viable() {
    // Pin the facts the rest of this suite relies on: the partition is
    // deterministic, order-preserving, exhaustive, and at N = 12 every
    // shard has ≥ 2 members for S ∈ {2, 4} (so nothing falls back to
    // the unsharded path).
    let cohort: Vec<ClientId> = (0..N).collect();
    for shards in [2usize, 4] {
        let rosters = shard_rosters(&cohort, shards);
        assert_eq!(rosters.len(), shards);
        for (s, roster) in rosters.iter().enumerate() {
            assert!(roster.len() >= 2, "S={shards}: shard {s} has {roster:?}");
            // Order-preserving within the shard, consistent with the
            // partition function.
            assert!(roster.windows(2).all(|w| w[0] < w[1]));
            assert!(roster.iter().all(|&id| shard_of(id, shards) == s));
        }
        let mut all: Vec<ClientId> = rosters.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, cohort, "S={shards}: not a partition");
        // Determinism: a second call yields the same rosters.
        assert_eq!(
            shard_rosters(&cohort, shards),
            shard_rosters(&cohort, shards)
        );
    }
    // S ≤ 1 keeps the cohort whole.
    assert_eq!(shard_rosters(&cohort, 0), vec![cohort.clone()]);
    assert_eq!(shard_rosters(&cohort, 1), vec![cohort.clone()]);
}

#[test]
fn shard_grid_matches_unsharded_driver() {
    // The tentpole pin: S ∈ {1, 2, 4} × (CollectMode × workers), all
    // bit-equal to the in-memory driver, with per-round metrics deltas
    // still attached through the shared registry.
    for (mode, workers) in ENGINES {
        for shards in [1usize, 2, 4] {
            let reports = run_sharded_session(2, mode, workers, shards, false, |_| None);
            assert_eq!(reports.len(), 2);
            for (i, report) in reports.iter().enumerate() {
                let round = i as u64 + 1;
                let tag = format!("{mode:?}/{workers}w/S{shards} round {round}");
                assert_eq!(report.round, round, "{tag}");
                let mem = driver_round(round, &[], false);
                assert_eq!(report.outcome.sum, mem.sum, "{tag}");
                assert_eq!(report.outcome.survivors, mem.survivors, "{tag}");
                assert_eq!(report.outcome.dropped, mem.dropped, "{tag}");
                assert!(report.dropouts.is_empty(), "{tag}: {:?}", report.dropouts);
                // Chunk layout is identical across shards and rides in
                // the merged report.
                assert_eq!(report.chunks, CHUNKS, "{tag}");
                // Uplink bytes land on the unlabeled series for S = 1
                // and on per-shard labeled series otherwise — either
                // way they ride in the round's metrics delta.
                let m = report.metrics.as_ref().expect("metrics delta");
                let uplink: u64 = if shards <= 1 {
                    m.get(
                        "dordis_frame_bytes_total{direction=\"in\",stage=\"MaskedInputCollection\"}",
                    )
                } else {
                    (0..shards)
                        .map(|s| {
                            m.get(&format!(
                                "dordis_frame_bytes_total{{direction=\"in\",shard=\"{s}\",\
                                 stage=\"MaskedInputCollection\"}}"
                            ))
                        })
                        .sum()
                };
                assert!(uplink > 0, "{tag}: no uplink bytes in the round delta");
            }
            assert_ne!(reports[0].outcome.sum, reports[1].outcome.sum);
        }
    }
}

#[test]
fn sharded_xnoise_matches_driver_modulo_seed_range() {
    // XNoise rounds: sums and survivors stay bit-equal; the merged
    // removal seeds, filtered to the union range, equal the driver's.
    for (mode, workers) in ENGINES {
        for shards in [1usize, 2, 4] {
            let reports = run_sharded_session(1, mode, workers, shards, true, |_| None);
            let report = &reports[0];
            let tag = format!("{mode:?}/{workers}w/S{shards}");
            let mem = driver_round(1, &[], true);
            assert_eq!(report.outcome.sum, mem.sum, "{tag}");
            assert_eq!(report.outcome.survivors, mem.survivors, "{tag}");
            let union_dropped = report.outcome.dropped.len();
            assert_eq!(union_dropped, 0, "{tag}");
            assert_eq!(
                seeds_in_union_range(&report.outcome.removal_seeds, union_dropped),
                seeds_in_union_range(&mem.removal_seeds, union_dropped),
                "{tag}: union-range removal seeds diverge"
            );
        }
    }
}

#[test]
fn sharded_dropout_then_rejoin_with_xnoise() {
    // The victim drops mid-chunk-stream in round 1 (after 1 of 4 chunk
    // frames) inside its shard, reconnects, and completes rounds 2–3.
    // The privacy-critical part: every shard recovers removal seeds
    // over a range keyed to the *union* dropout count's superset, so
    // the union-range filter must reproduce the driver exactly.
    for (mode, workers) in ENGINES {
        for shards in [1usize, 2, 4] {
            let tag = format!("{mode:?}/{workers}w/S{shards}");
            let reports = run_sharded_session(3, mode, workers, shards, true, |r| {
                (r == 1).then_some((VICTIM, 1))
            });

            let r1 = &reports[0];
            assert!(!r1.outcome.survivors.contains(&VICTIM), "{tag}");
            assert_eq!(r1.outcome.dropped, vec![VICTIM], "{tag}");
            let detected = r1
                .dropouts
                .iter()
                .find(|d| d.client == VICTIM)
                .unwrap_or_else(|| panic!("{tag}: dropout not detected"));
            assert_eq!(detected.stage, "MaskedInputCollection", "{tag}");
            assert_eq!(detected.kind, DropKind::Disconnected, "{tag}");
            let mem1 = driver_round(1, &[VICTIM], true);
            assert_eq!(r1.outcome.sum, mem1.sum, "{tag} dropout round");
            assert_eq!(r1.outcome.survivors, mem1.survivors, "{tag}");
            let union_dropped = r1.outcome.dropped.len();
            assert_eq!(
                seeds_in_union_range(&r1.outcome.removal_seeds, union_dropped),
                seeds_in_union_range(&mem1.removal_seeds, union_dropped),
                "{tag}: union-range removal seeds diverge after dropout"
            );

            // Rejoined over a fresh connection: full cohort again,
            // bit-equal to the full-roster driver round.
            for (i, report) in reports.iter().enumerate().skip(1) {
                let round = i as u64 + 1;
                assert!(
                    report.outcome.survivors.contains(&VICTIM),
                    "{tag}: victim did not rejoin round {round}"
                );
                let mem = driver_round(round, &[], true);
                assert_eq!(report.outcome.sum, mem.sum, "{tag} round {round}");
                assert_eq!(report.outcome.survivors, mem.survivors, "{tag}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Stale frames inside a shard.
// ---------------------------------------------------------------------

/// Duplicates the client's first AdvertiseKeys frame with a stale round
/// id just before the real one — the owning *shard* must discard the
/// stale copy, and the merged report must surface the count.
struct StaleInjector {
    inner: LoopbackChannel,
    injected: Arc<AtomicU32>,
}

impl Channel for StaleInjector {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        if self.injected.load(Ordering::SeqCst) == 0 {
            if let Ok(env) = Envelope::decode(frame) {
                if env.stage == StageTag::AdvertiseKeys {
                    self.injected.store(1, Ordering::SeqCst);
                    let stale = Envelope::new(StageTag::AdvertiseKeys, env.round - 1, env.body);
                    self.inner.send(&stale.encode())?;
                }
            }
        }
        self.inner.send(frame)
    }

    fn recv_deadline(&mut self, deadline: Instant) -> Result<Vec<u8>, NetError> {
        self.inner.recv_deadline(deadline)
    }

    fn peer(&self) -> String {
        self.inner.peer()
    }
}

#[test]
fn shard_discards_stale_frame_and_merged_report_counts_it() {
    for shards in [2usize, 4] {
        let (hub, mut acceptor) = LoopbackHub::new();
        let injected = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for id in 0..N {
            let hub = hub.clone();
            let injected = Arc::clone(&injected);
            handles.push(std::thread::spawn(move || -> Result<(), String> {
                let inner = hub.connect(&format!("c{id}")).map_err(|e| e.to_string())?;
                let opts = SessionClientOptions {
                    id,
                    rng_seed: SEED,
                    recv_timeout: Duration::from_secs(20),
                    silent_linger: Duration::from_secs(1),
                };
                let run = |chan: &mut dyn Channel| {
                    run_session_client(
                        chan,
                        &opts,
                        |_| None,
                        |_| None,
                        |r, _params, _cohort, _payload| Ok(input_for(id, r, false)),
                        |_| None,
                    )
                };
                let report = if id == VICTIM {
                    let mut chan = StaleInjector { inner, injected };
                    run(&mut chan)
                } else {
                    let mut chan = inner;
                    run(&mut chan)
                }
                .map_err(|e| format!("client {id}: {e}"))?;
                match report.end {
                    SessionEndKind::Ended => Ok(()),
                    other => Err(format!("client {id}: unexpected end {other:?}")),
                }
            }));
        }
        let cfg = SessionConfig {
            first_round: 1,
            rounds: 1,
            join_timeout: Duration::from_secs(10),
            stage_timeout: Duration::from_secs(10),
            chunks: CHUNKS,
            chunk_compute: None,
            tick: CoordinatorConfig::DEFAULT_TICK,
            mode: CollectMode::Reactor,
            workers: 0,
            shards,
            ingress_budget: 0,
            announce: true,
            population: (0..N).collect(),
            seating: Seating::Roster,
            params_for: Box::new(|round, _| params_for_round(round, false)),
            telemetry: Telemetry::enabled(),
            metrics_addr: None,
            replica: None,
            faults: FaultPlan::none(),
        };
        let mut session = Session::new(&mut acceptor, cfg).expect("session");
        let report = session.run_round(&[]).expect("round");
        session.finish();
        for h in handles {
            h.join().expect("client thread").expect("client result");
        }
        assert_eq!(report.stale_frames, 1, "S={shards}");
        assert!(
            report.dropouts.is_empty(),
            "S={shards}: {:?}",
            report.dropouts
        );
        let mem = driver_round(1, &[], false);
        assert_eq!(report.outcome.sum, mem.sum, "S={shards}");
        assert_eq!(report.outcome.survivors, mem.survivors, "S={shards}");
    }
}

// ---------------------------------------------------------------------
// Sparse shard graphs.
// ---------------------------------------------------------------------

/// A cohort big enough that the splitmix64 split at S = 2 leaves both
/// shards (40/40) above [`MaskingGraph::RECOMMENDED_COMPLETE_MAX`], so
/// `shard_params` hands each shard the Harary graph instead of
/// Complete.
const BIG_N: u32 = 80;
/// Mid-stream dropout victim for the big cohort; lands in shard 0.
const BIG_VICTIM: ClientId = 4;

fn big_params(round: u64) -> RoundParams {
    RoundParams {
        round,
        clients: (0..BIG_N).collect(),
        threshold: BIG_N as usize / 2 + 1,
        bit_width: BITS,
        vector_len: DIM,
        noise_components: NOISE_T,
        threat_model: ThreatModel::SemiHonest,
        graph: MaskingGraph::recommended(BIG_N as usize),
    }
}

fn big_driver_round(round: u64, drops: &[ClientId]) -> RoundOutcome {
    let mut dropout = DropoutSchedule::none();
    for &id in drops {
        dropout.drop_at(id, DropStage::BeforeMaskedInput);
    }
    let inputs: BTreeMap<ClientId, ClientInput> = (0..BIG_N)
        .map(|id| (id, input_for(id, round, true)))
        .collect();
    let (outcome, _) = run_round(RoundSpec {
        params: big_params(round),
        inputs,
        dropout,
        rng_seed: round_rng_seed(SEED, round),
    })
    .expect("big driver round");
    outcome
}

#[test]
fn sparse_shards_match_unsharded_driver() {
    // PR 7 pinned shard params to `MaskingGraph::Complete`; now shards
    // above `RECOMMENDED_COMPLETE_MAX` members get the sparse Harary
    // graph (which is also what lets a shard roster exceed 255). The
    // merged outcome must still equal the unsharded driver — with an
    // XNoise round and a mid-stream dropout to force neighborhood
    // share reconstruction inside a sparse shard.
    let cohort: Vec<ClientId> = (0..BIG_N).collect();
    let rosters = shard_rosters(&cohort, 2);
    for (s, roster) in rosters.iter().enumerate() {
        assert!(
            roster.len() > MaskingGraph::RECOMMENDED_COMPLETE_MAX,
            "shard {s} has only {} members; bump BIG_N",
            roster.len()
        );
        assert!(
            matches!(
                MaskingGraph::recommended(roster.len()),
                MaskingGraph::Harary { .. }
            ),
            "shard {s} would not get a sparse graph"
        );
    }
    assert!(
        rosters[0].contains(&BIG_VICTIM),
        "victim moved shards; pick another"
    );

    let (hub, mut acceptor) = LoopbackHub::new();
    let mut handles = Vec::new();
    for id in 0..BIG_N {
        let hub = hub.clone();
        handles.push(std::thread::spawn(move || -> Result<(), String> {
            loop {
                let mut chan = hub
                    .connect(&format!("c{id}"))
                    .map_err(|e| format!("connect: {e}"))?;
                let opts = SessionClientOptions {
                    id,
                    rng_seed: SEED,
                    recv_timeout: Duration::from_secs(60),
                    silent_linger: Duration::from_secs(1),
                };
                let report = run_session_client(
                    &mut chan,
                    &opts,
                    |_| None,
                    |r| {
                        (r == 1 && id == BIG_VICTIM).then_some(FailPoint {
                            stage: FailStage::MaskedInputAfterChunks(1),
                            action: FailAction::Disconnect,
                        })
                    },
                    |r, _params, _cohort, _payload| Ok(input_for(id, r, true)),
                    |_| None,
                )
                .map_err(|e| format!("client {id}: {e}"))?;
                match report.end {
                    SessionEndKind::Ended => return Ok(()),
                    SessionEndKind::Failed { .. } => continue, // rejoin
                    other => return Err(format!("client {id}: unexpected end {other:?}")),
                }
            }
        }));
    }

    let cfg = SessionConfig {
        first_round: 1,
        rounds: 2,
        join_timeout: Duration::from_secs(30),
        stage_timeout: Duration::from_secs(60),
        chunks: CHUNKS,
        chunk_compute: None,
        tick: CoordinatorConfig::DEFAULT_TICK,
        mode: CollectMode::Reactor,
        workers: 0,
        shards: 2,
        ingress_budget: 0,
        announce: true,
        population: (0..BIG_N).collect(),
        seating: Seating::Roster,
        params_for: Box::new(|round, _| big_params(round)),
        telemetry: Telemetry::enabled(),
        metrics_addr: None,
        replica: None,
        faults: FaultPlan::none(),
    };
    let mut session = Session::new(&mut acceptor, cfg).expect("session");
    let mut reports = Vec::new();
    for _ in 0..2 {
        reports.push(session.run_round(&[]).expect("round"));
    }
    session.finish();
    for h in handles {
        h.join().expect("client thread").expect("client result");
    }

    // Round 1: victim dropped mid-stream inside its sparse shard, so
    // its neighbors' shares reconstruct its pairwise masks — the merge
    // must equal the unsharded driver with the same drop.
    let r1 = &reports[0];
    assert!(!r1.outcome.survivors.contains(&BIG_VICTIM));
    assert_eq!(r1.outcome.dropped, vec![BIG_VICTIM]);
    let mem1 = big_driver_round(1, &[BIG_VICTIM]);
    assert_eq!(r1.outcome.sum, mem1.sum, "sparse dropout round");
    assert_eq!(r1.outcome.survivors, mem1.survivors);
    let union_dropped = r1.outcome.dropped.len();
    assert_eq!(
        seeds_in_union_range(&r1.outcome.removal_seeds, union_dropped),
        seeds_in_union_range(&mem1.removal_seeds, union_dropped),
        "sparse shards: union-range removal seeds diverge"
    );

    // Round 2: victim rejoined; full sparse cohort, no drops.
    let r2 = &reports[1];
    assert!(r2.outcome.survivors.contains(&BIG_VICTIM));
    let mem2 = big_driver_round(2, &[]);
    assert_eq!(r2.outcome.sum, mem2.sum, "sparse full round");
    assert_eq!(r2.outcome.survivors, mem2.survivors);
    assert_eq!(
        seeds_in_union_range(&r2.outcome.removal_seeds, 0),
        seeds_in_union_range(&mem2.removal_seeds, 0),
    );
}
