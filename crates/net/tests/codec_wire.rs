//! Codec invariants: `decode(encode(m)) == m` for every message, and the
//! encoded body length equals `WireSize::wire_bytes()` for every message
//! type — the byte counts that feed the paper's Figure 2/10 cost model.

use dordis_crypto::ed25519::Signature;
use dordis_crypto::shamir::Share;
use dordis_net::codec::{
    decode_abort, decode_advertised_keys, decode_consistency_signature, decode_encrypted_shares,
    decode_id_list, decode_join, decode_list, decode_masked_input, decode_noise_share_response,
    decode_params, decode_signature_list, decode_unmasking_response, encode_abort, encode_join,
    encode_list, encode_params, encode_signature_list, Encode, Envelope, StageTag, WIRE_VERSION,
};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::messages::{
    AdvertisedKeys, ConsistencySignature, EncryptedShares, IdList, MaskedInput, NoiseShareResponse,
    UnmaskingResponse, WireSize,
};
use dordis_secagg::{RoundParams, ThreatModel};

fn share(x: u8, len: usize) -> Share {
    Share {
        x,
        y: (0..len).map(|i| (i as u8).wrapping_mul(x)).collect(),
    }
}

fn assert_wire_agreement<T: Encode + WireSize>(m: &T, what: &str) {
    assert_eq!(
        m.encoded().len() as u64,
        m.wire_bytes(),
        "codec length != wire_bytes() for {what}"
    );
}

#[test]
fn advertised_keys_roundtrip_and_size() {
    for signature in [None, Some(Signature([7u8; 64]))] {
        let m = AdvertisedKeys {
            client: 42,
            c_pk: [1u8; 32],
            s_pk: [2u8; 32],
            signature,
        };
        assert_wire_agreement(&m, "AdvertisedKeys");
        assert_eq!(decode_advertised_keys(&m.encoded()).unwrap(), m);
    }
    // Bodies of any other tail length are rejected.
    let m = AdvertisedKeys {
        client: 1,
        c_pk: [0u8; 32],
        s_pk: [0u8; 32],
        signature: None,
    };
    let mut bad = m.encoded();
    bad.push(0);
    assert!(decode_advertised_keys(&bad).is_err());
}

#[test]
fn encrypted_shares_roundtrip_and_size() {
    for ct_len in [0usize, 1, 200] {
        let m = EncryptedShares {
            from: 3,
            to: 9,
            ciphertext: vec![0xab; ct_len],
        };
        assert_wire_agreement(&m, "EncryptedShares");
        assert_eq!(decode_encrypted_shares(&m.encoded()).unwrap(), m);
    }
}

#[test]
fn masked_input_roundtrip_and_size_across_bit_widths() {
    for bits in [1u32, 7, 8, 16, 20, 33, 62] {
        for len in [0usize, 1, 5, 64, 1000] {
            let mask = (1u64 << bits) - 1;
            let m = MaskedInput {
                client: 5,
                vector: (0..len as u64).map(|i| (i * 0x9e37 + 11) & mask).collect(),
                bit_width: bits,
            };
            assert_wire_agreement(&m, "MaskedInput");
            let back = decode_masked_input(&m.encoded(), bits, len).unwrap();
            assert_eq!(back, m, "bits={bits} len={len}");
        }
    }
    // Length mismatches are rejected.
    let m = MaskedInput {
        client: 0,
        vector: vec![1, 2, 3],
        bit_width: 20,
    };
    assert!(decode_masked_input(&m.encoded(), 20, 4).is_err());
    assert!(decode_masked_input(&m.encoded(), 24, 3).is_err());
}

#[test]
fn consistency_signature_roundtrip_and_size() {
    let m = ConsistencySignature {
        client: 17,
        signature: Signature([9u8; 64]),
    };
    assert_wire_agreement(&m, "ConsistencySignature");
    assert_eq!(decode_consistency_signature(&m.encoded()).unwrap(), m);
}

#[test]
fn unmasking_response_roundtrip_and_size() {
    let m = UnmaskingResponse {
        client: 7,
        sk_shares: vec![(1, share(2, 32)), (4, share(3, 32))],
        b_shares: vec![(2, share(2, 32)), (3, share(2, 32)), (7, share(9, 32))],
        own_seeds: vec![(2, [0xcd; 32]), (3, [0xee; 32])],
    };
    assert_wire_agreement(&m, "UnmaskingResponse");
    assert_eq!(decode_unmasking_response(&m.encoded()).unwrap(), m);

    // Empty sections work too.
    let empty = UnmaskingResponse {
        client: 0,
        sk_shares: vec![],
        b_shares: vec![],
        own_seeds: vec![],
    };
    assert_wire_agreement(&empty, "UnmaskingResponse(empty)");
    assert_eq!(decode_unmasking_response(&empty.encoded()).unwrap(), empty);
}

#[test]
fn noise_share_response_roundtrip_and_size() {
    let m = NoiseShareResponse {
        client: 11,
        seed_shares: vec![
            (1, 1, share(5, 32)),
            (1, 2, share(5, 32)),
            (9, 2, share(6, 17)),
        ],
    };
    assert_wire_agreement(&m, "NoiseShareResponse");
    assert_eq!(decode_noise_share_response(&m.encoded()).unwrap(), m);
}

#[test]
fn id_list_roundtrip_and_size() {
    for n in [0u32, 1, 100] {
        let m = IdList((0..n).collect());
        assert_wire_agreement(&m, "IdList");
        assert_eq!(decode_id_list(&m.encoded()).unwrap(), m);
    }
}

#[test]
fn truncated_bodies_are_rejected_not_panicking() {
    let m = UnmaskingResponse {
        client: 7,
        sk_shares: vec![(1, share(2, 32))],
        b_shares: vec![(2, share(2, 32))],
        own_seeds: vec![(2, [0xcd; 32])],
    };
    let enc = m.encoded();
    for keep in 0..enc.len() {
        assert!(
            decode_unmasking_response(&enc[..keep]).is_err(),
            "len {keep}"
        );
    }
    let mut extended = enc.clone();
    extended.push(0);
    assert!(decode_unmasking_response(&extended).is_err());
}

#[test]
fn list_framing_roundtrips() {
    let items: Vec<EncryptedShares> = (0..5)
        .map(|i| EncryptedShares {
            from: i,
            to: (i + 1) % 5,
            ciphertext: vec![i as u8; (i as usize + 1) * 3],
        })
        .collect();
    let body = encode_list(&items);
    let back = decode_list(&body, decode_encrypted_shares).unwrap();
    assert_eq!(back, items);
    // Empty lists too.
    let empty: Vec<EncryptedShares> = vec![];
    assert_eq!(
        decode_list(&encode_list(&empty), decode_encrypted_shares).unwrap(),
        empty
    );
}

#[test]
fn envelope_roundtrip_and_version_gate() {
    let env = Envelope::new(StageTag::MaskedInput, 0xdead_beef_0042, vec![1, 2, 3]);
    let enc = env.encode();
    assert_eq!(Envelope::decode(&enc).unwrap(), env);
    assert_eq!(enc.len(), 10 + 3);

    let mut wrong_version = enc.clone();
    wrong_version[0] = WIRE_VERSION + 1;
    assert!(Envelope::decode(&wrong_version).is_err());

    let mut wrong_stage = enc;
    wrong_stage[1] = 200;
    assert!(Envelope::decode(&wrong_stage).is_err());
    assert!(Envelope::decode(&[1, 2]).is_err());
}

#[test]
fn control_payloads_roundtrip() {
    assert_eq!(decode_join(&encode_join(77)).unwrap(), 77);
    assert!(decode_join(&[1, 2, 3]).is_err());

    for graph in [
        MaskingGraph::Complete,
        MaskingGraph::Harary { half_degree: 4 },
    ] {
        for threat_model in [ThreatModel::SemiHonest, ThreatModel::Malicious] {
            let p = RoundParams {
                round: 9,
                clients: (0..10).collect(),
                threshold: 6,
                bit_width: 20,
                vector_len: 128,
                noise_components: 3,
                threat_model,
                graph,
            };
            let back = decode_params(&encode_params(&p)).unwrap();
            assert_eq!(back.round, p.round);
            assert_eq!(back.clients, p.clients);
            assert_eq!(back.threshold, p.threshold);
            assert_eq!(back.bit_width, p.bit_width);
            assert_eq!(back.vector_len, p.vector_len);
            assert_eq!(back.noise_components, p.noise_components);
            assert_eq!(back.threat_model, p.threat_model);
            assert_eq!(back.graph, p.graph);
        }
    }

    let sigs = vec![(1u32, Signature([3u8; 64])), (2, Signature([4u8; 64]))];
    assert_eq!(
        decode_signature_list(&encode_signature_list(&sigs)).unwrap(),
        sigs
    );

    assert_eq!(
        decode_abort(&encode_abort("below threshold")),
        "below threshold"
    );
}
