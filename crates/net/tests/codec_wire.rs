//! Codec invariants: `decode(encode(m)) == m` for every message, and the
//! encoded body length equals `WireSize::wire_bytes()` for every message
//! type — the byte counts that feed the paper's Figure 2/10 cost model.

use dordis_crypto::ed25519::Signature;
use dordis_crypto::shamir::Share;
use dordis_net::codec::{
    decode_abort, decode_advertised_keys, decode_consistency_signature, decode_encrypted_shares,
    decode_id_list, decode_join, decode_list, decode_masked_input, decode_noise_share_response,
    decode_params, decode_setup, decode_signature_list, decode_unmasking_response, encode_abort,
    encode_join, encode_list, encode_params, encode_setup, encode_signature_list,
    reassemble_masked_input, split_masked_input, Encode, Envelope, EnvelopeView, FrameContext,
    StageTag, HEADER_BYTES, WIRE_VERSION,
};
use dordis_net::NetError;
use dordis_pipeline::ChunkPlan;
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::messages::{
    AdvertisedKeys, ConsistencySignature, EncryptedShares, IdList, MaskedInput, NoiseShareResponse,
    UnmaskingResponse, WireSize,
};
use dordis_secagg::{RoundParams, ThreatModel};

fn share(x: u8, len: usize) -> Share {
    Share {
        x,
        y: (0..len).map(|i| (i as u8).wrapping_mul(x)).collect(),
    }
}

fn ctx() -> FrameContext {
    FrameContext {
        stage: StageTag::MaskedInput,
        round: 7,
        chunk: 0,
    }
}

fn assert_wire_agreement<T: Encode + WireSize>(m: &T, what: &str) {
    assert_eq!(
        m.encoded().len() as u64,
        m.wire_bytes(),
        "codec length != wire_bytes() for {what}"
    );
}

#[test]
fn advertised_keys_roundtrip_and_size() {
    for signature in [None, Some(Signature([7u8; 64]))] {
        let m = AdvertisedKeys {
            client: 42,
            c_pk: [1u8; 32],
            s_pk: [2u8; 32],
            signature,
        };
        assert_wire_agreement(&m, "AdvertisedKeys");
        assert_eq!(decode_advertised_keys(&m.encoded()).unwrap(), m);
    }
    // Bodies of any other tail length are rejected.
    let m = AdvertisedKeys {
        client: 1,
        c_pk: [0u8; 32],
        s_pk: [0u8; 32],
        signature: None,
    };
    let mut bad = m.encoded();
    bad.push(0);
    assert!(decode_advertised_keys(&bad).is_err());
}

#[test]
fn encrypted_shares_roundtrip_and_size() {
    for ct_len in [0usize, 1, 200] {
        let m = EncryptedShares {
            from: 3,
            to: 9,
            ciphertext: vec![0xab; ct_len],
        };
        assert_wire_agreement(&m, "EncryptedShares");
        assert_eq!(decode_encrypted_shares(&m.encoded()).unwrap(), m);
    }
}

#[test]
fn masked_input_roundtrip_and_size_across_bit_widths() {
    for bits in [1u32, 7, 8, 16, 20, 33, 62] {
        for len in [0usize, 1, 5, 64, 1000] {
            let mask = (1u64 << bits) - 1;
            let m = MaskedInput {
                client: 5,
                vector: (0..len as u64).map(|i| (i * 0x9e37 + 11) & mask).collect(),
                bit_width: bits,
            };
            assert_wire_agreement(&m, "MaskedInput");
            let back = decode_masked_input(&m.encoded(), bits, len, ctx()).unwrap();
            assert_eq!(back, m, "bits={bits} len={len}");
        }
    }
    // Length mismatches are rejected.
    let m = MaskedInput {
        client: 0,
        vector: vec![1, 2, 3],
        bit_width: 20,
    };
    assert!(decode_masked_input(&m.encoded(), 20, 4, ctx()).is_err());
    assert!(decode_masked_input(&m.encoded(), 24, 3, ctx()).is_err());
}

#[test]
fn masked_input_errors_carry_frame_context() {
    // A bad frame must be attributable: the error names the stage, the
    // round, and the chunk the collection machine was decoding.
    let m = MaskedInput {
        client: 9,
        vector: vec![1, 2, 3],
        bit_width: 20,
    };
    let bad_ctx = FrameContext {
        stage: StageTag::MaskedInput,
        round: 42,
        chunk: 3,
    };
    let err = decode_masked_input(&m.encoded(), 20, 4, bad_ctx).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("MaskedInput"), "{msg}");
    assert!(msg.contains("round 42"), "{msg}");
    assert!(msg.contains("chunk 3"), "{msg}");
    assert!(msg.contains("client 9"), "{msg}");
}

#[test]
fn chunk_payloads_partition_single_frame() {
    // The headline wire-accounting property: per-chunk bodies are the
    // exact byte-slices of the single-frame packing — summed payloads
    // are byte-equal to the unchunked accounting, and concatenation
    // reproduces the single frame bit for bit.
    for bits in [1u32, 7, 8, 16, 20, 33, 62] {
        for (len, m) in [(96usize, 4usize), (1000, 8), (517, 5), (12, 3)] {
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            let full = MaskedInput {
                client: 21,
                vector: (0..len as u64).map(|i| (i * 0x9e37 + 3) & mask).collect(),
                bit_width: bits,
            };
            let plan = ChunkPlan::aligned(len, m, bits).unwrap();
            let chunks = split_masked_input(&full, &plan).unwrap();
            assert_eq!(chunks.len(), plan.chunks());

            let full_body = full.encoded();
            // Payloads (bodies minus the 4-byte sender id) partition the
            // single-frame payload exactly.
            let mut concat = Vec::new();
            let mut summed = 0usize;
            for c in &chunks {
                let body = c.encoded();
                concat.extend_from_slice(&body[4..]);
                summed += body.len() - 4;
            }
            assert_eq!(summed, full_body.len() - 4, "bits={bits} len={len} m={m}");
            assert_eq!(concat, full_body[4..], "bits={bits} len={len} m={m}");

            // And each chunk body slices out of the full packing at the
            // plan's byte ranges.
            for (c, part) in chunks.iter().enumerate() {
                let body = part.encoded();
                let r = plan.byte_range(c);
                assert_eq!(&body[4..], &full_body[4 + r.start..4 + r.end]);
            }

            // Round-trip: decode each chunk, reassemble, compare.
            let decoded: Vec<MaskedInput> = chunks
                .iter()
                .enumerate()
                .map(|(c, part)| {
                    decode_masked_input(
                        &part.encoded(),
                        bits,
                        plan.chunk_len(c),
                        FrameContext {
                            stage: StageTag::MaskedInput,
                            round: 1,
                            chunk: c as u16,
                        },
                    )
                    .unwrap()
                })
                .collect();
            assert_eq!(reassemble_masked_input(&decoded, &plan).unwrap(), full);
        }
    }
}

#[test]
fn consistency_signature_roundtrip_and_size() {
    let m = ConsistencySignature {
        client: 17,
        signature: Signature([9u8; 64]),
    };
    assert_wire_agreement(&m, "ConsistencySignature");
    assert_eq!(decode_consistency_signature(&m.encoded()).unwrap(), m);
}

#[test]
fn unmasking_response_roundtrip_and_size() {
    let m = UnmaskingResponse {
        client: 7,
        sk_shares: vec![(1, share(2, 32)), (4, share(3, 32))],
        b_shares: vec![(2, share(2, 32)), (3, share(2, 32)), (7, share(9, 32))],
        own_seeds: vec![(2, [0xcd; 32]), (3, [0xee; 32])],
    };
    assert_wire_agreement(&m, "UnmaskingResponse");
    assert_eq!(decode_unmasking_response(&m.encoded()).unwrap(), m);

    // Empty sections work too.
    let empty = UnmaskingResponse {
        client: 0,
        sk_shares: vec![],
        b_shares: vec![],
        own_seeds: vec![],
    };
    assert_wire_agreement(&empty, "UnmaskingResponse(empty)");
    assert_eq!(decode_unmasking_response(&empty.encoded()).unwrap(), empty);
}

#[test]
fn noise_share_response_roundtrip_and_size() {
    let m = NoiseShareResponse {
        client: 11,
        seed_shares: vec![
            (1, 1, share(5, 32)),
            (1, 2, share(5, 32)),
            (9, 2, share(6, 17)),
        ],
    };
    assert_wire_agreement(&m, "NoiseShareResponse");
    assert_eq!(decode_noise_share_response(&m.encoded()).unwrap(), m);
}

#[test]
fn id_list_roundtrip_and_size() {
    for n in [0u32, 1, 100] {
        let m = IdList((0..n).collect());
        assert_wire_agreement(&m, "IdList");
        assert_eq!(decode_id_list(&m.encoded()).unwrap(), m);
    }
}

#[test]
fn truncated_bodies_are_rejected_not_panicking() {
    let m = UnmaskingResponse {
        client: 7,
        sk_shares: vec![(1, share(2, 32))],
        b_shares: vec![(2, share(2, 32))],
        own_seeds: vec![(2, [0xcd; 32])],
    };
    let enc = m.encoded();
    for keep in 0..enc.len() {
        assert!(
            decode_unmasking_response(&enc[..keep]).is_err(),
            "len {keep}"
        );
    }
    let mut extended = enc.clone();
    extended.push(0);
    assert!(decode_unmasking_response(&extended).is_err());
}

#[test]
fn list_framing_roundtrips() {
    let items: Vec<EncryptedShares> = (0..5)
        .map(|i| EncryptedShares {
            from: i,
            to: (i + 1) % 5,
            ciphertext: vec![i as u8; (i as usize + 1) * 3],
        })
        .collect();
    let body = encode_list(&items);
    let back = decode_list(&body, decode_encrypted_shares).unwrap();
    assert_eq!(back, items);
    // Empty lists too.
    let empty: Vec<EncryptedShares> = vec![];
    assert_eq!(
        decode_list(&encode_list(&empty), decode_encrypted_shares).unwrap(),
        empty
    );
}

#[test]
fn envelope_roundtrip_and_version_gate() {
    let env = Envelope::new(StageTag::MaskedInput, 0xdead_beef_0042, vec![1, 2, 3]);
    let enc = env.encode();
    assert_eq!(Envelope::decode(&enc).unwrap(), env);
    assert_eq!(enc.len(), HEADER_BYTES + 3);
    assert_eq!(env.chunk, 0);

    // Chunked envelopes carry their chunk id through the header.
    let chunked = Envelope::chunked(StageTag::MaskedInput, 9, 5, vec![7, 8]);
    assert_eq!(Envelope::decode(&chunked.encode()).unwrap(), chunked);
    assert_eq!(Envelope::decode(&chunked.encode()).unwrap().chunk, 5);

    let mut wrong_stage = enc;
    wrong_stage[1] = 200;
    assert!(Envelope::decode(&wrong_stage).is_err());
    assert!(Envelope::decode(&[]).is_err());
    assert!(Envelope::decode(&[WIRE_VERSION, 2]).is_err());
}

#[test]
fn version_mismatch_is_a_typed_error() {
    // Chunked frames changed the wire contract; a v1 peer must surface
    // as NetError::Version with both versions named, not as generic
    // codec garbage.
    let env = Envelope::new(StageTag::Join, 1, encode_join(3));
    for got in [0u8, WIRE_VERSION - 1, WIRE_VERSION + 1, 0xff] {
        let mut frame = env.encode();
        frame[0] = got;
        match Envelope::decode(&frame) {
            Err(NetError::Version { got: g, expected }) => {
                assert_eq!(g, got);
                assert_eq!(expected, WIRE_VERSION);
            }
            other => panic!("expected NetError::Version, got {other:?}"),
        }
    }
    // Even a truncated frame from an old peer reports the version first
    // (that is the actionable diagnosis).
    assert!(matches!(
        Envelope::decode(&[1u8]),
        Err(NetError::Version { got: 1, .. })
    ));
}

#[test]
fn setup_body_carries_requested_chunk_count() {
    let p = RoundParams {
        round: 3,
        clients: (0..6).collect(),
        threshold: 4,
        bit_width: 20,
        vector_len: 64,
        noise_components: 2,
        threat_model: ThreatModel::SemiHonest,
        graph: MaskingGraph::Complete,
    };
    for chunks in [1u16, 4, 8, 20] {
        let (back, m, cohort, payload) = decode_setup(&encode_setup(&p, chunks, 6, &[])).unwrap();
        assert_eq!(m, chunks);
        assert_eq!(cohort, 6);
        assert!(payload.is_empty());
        assert_eq!(back.vector_len, p.vector_len);
        assert_eq!(back.clients, p.clients);
    }
    // The application payload travels opaquely after the counters, and
    // the union cohort may exceed the (shard-local) client set.
    let (_, m, cohort, payload) = decode_setup(&encode_setup(&p, 4, 128, &[9, 8, 7])).unwrap();
    assert_eq!(m, 4);
    assert_eq!(cohort, 128);
    assert_eq!(payload, vec![9, 8, 7]);
    // Truncating the trailing counters is rejected.
    let body = encode_setup(&p, 4, 6, &[]);
    assert!(decode_setup(&body[..body.len() - 1]).is_err());
}

#[test]
fn control_payloads_roundtrip() {
    assert_eq!(decode_join(&encode_join(77)).unwrap(), 77);
    assert!(decode_join(&[1, 2, 3]).is_err());

    for graph in [
        MaskingGraph::Complete,
        MaskingGraph::Harary { half_degree: 4 },
    ] {
        for threat_model in [ThreatModel::SemiHonest, ThreatModel::Malicious] {
            let p = RoundParams {
                round: 9,
                clients: (0..10).collect(),
                threshold: 6,
                bit_width: 20,
                vector_len: 128,
                noise_components: 3,
                threat_model,
                graph,
            };
            let back = decode_params(&encode_params(&p)).unwrap();
            assert_eq!(back.round, p.round);
            assert_eq!(back.clients, p.clients);
            assert_eq!(back.threshold, p.threshold);
            assert_eq!(back.bit_width, p.bit_width);
            assert_eq!(back.vector_len, p.vector_len);
            assert_eq!(back.noise_components, p.noise_components);
            assert_eq!(back.threat_model, p.threat_model);
            assert_eq!(back.graph, p.graph);
        }
    }

    let sigs = vec![(1u32, Signature([3u8; 64])), (2, Signature([4u8; 64]))];
    assert_eq!(
        decode_signature_list(&encode_signature_list(&sigs)).unwrap(),
        sigs
    );

    assert_eq!(
        decode_abort(&encode_abort("below threshold")),
        "below threshold"
    );
}

mod chunked_frame_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Full wire loop for the chunked data plane over random dims,
        /// chunk counts, and bit widths: split → per-chunk envelope
        /// encode/decode → body decode → reassemble == identity.
        #[test]
        fn prop_chunked_masked_input_frames_roundtrip(
            len in 0usize..400,
            m in 1usize..10,
            bits in 1u32..63,
            round in 0u64..10_000,
        ) {
            let mask = (1u64 << bits) - 1;
            let full = MaskedInput {
                client: 7,
                vector: (0..len as u64).map(|i| i.wrapping_mul(0x517c_c1b7) & mask).collect(),
                bit_width: bits,
            };
            let plan = ChunkPlan::aligned(len, m, bits).unwrap();
            let parts = split_masked_input(&full, &plan).unwrap();
            prop_assert_eq!(parts.len(), plan.chunks());
            let mut decoded = Vec::with_capacity(parts.len());
            for (c, part) in parts.iter().enumerate() {
                let env = Envelope::chunked(StageTag::MaskedInput, round, c as u16, part.encoded());
                let back = Envelope::decode(&env.encode()).unwrap();
                prop_assert_eq!(usize::from(back.chunk), c);
                prop_assert_eq!(back.round, round);
                let mi = decode_masked_input(&back.body, bits, plan.chunk_len(c), back.context()).unwrap();
                decoded.push(mi);
            }
            prop_assert_eq!(reassemble_masked_input(&decoded, &plan).unwrap(), full);
        }

        /// The zero-copy view is byte-equal to the owning decoder on
        /// every frame the owning decoder accepts: same header fields,
        /// and `view.body` is exactly the borrowed tail of the frame
        /// that `Envelope::decode` copies out. Decoding a masked input
        /// straight from the borrowed slice yields the same chunk.
        #[test]
        fn prop_envelope_view_matches_owning_decode(
            len in 0usize..200,
            bits in 1u32..63,
            round in 0u64..10_000,
            chunk in 0u16..64,
            client in 0u32..1000,
        ) {
            let mask = (1u64 << bits) - 1;
            let part = MaskedInput {
                client,
                vector: (0..len as u64).map(|i| i.wrapping_mul(0x9e37_79b9) & mask).collect(),
                bit_width: bits,
            };
            let frame = Envelope::chunked(StageTag::MaskedInput, round, chunk, part.encoded())
                .encode();
            let owned = Envelope::decode(&frame).unwrap();
            let view = EnvelopeView::decode(&frame).unwrap();
            prop_assert_eq!(view.stage, owned.stage);
            prop_assert_eq!(view.round, owned.round);
            prop_assert_eq!(view.chunk, owned.chunk);
            prop_assert_eq!(view.body, owned.body.as_slice());
            prop_assert_eq!(view.body.as_ptr(), frame[HEADER_BYTES..].as_ptr());
            prop_assert_eq!(view.context(), owned.context());
            let from_view = decode_masked_input(view.body, bits, len, view.context()).unwrap();
            let from_owned = decode_masked_input(&owned.body, bits, len, owned.context()).unwrap();
            prop_assert_eq!(&from_view, &from_owned);
            prop_assert_eq!(from_view, part);

            // Corrupt frames are rejected identically (same typed
            // error) by both decoders.
            for cut in 1..=frame.len().min(3) {
                let truncated = &frame[..frame.len() - cut];
                let o = Envelope::decode(truncated);
                let v = EnvelopeView::decode(truncated);
                prop_assert_eq!(o.is_err(), v.is_err());
            }
        }
    }
}
