//! Shared helpers for the dordis-net integration suites.

use dordis_net::coordinator::CollectMode;

/// The engine grid every equivalence suite runs under: both collection
/// modes × serial and pooled unmasking. All four must produce
/// bit-equal rounds; editing this one const widens (or narrows) every
/// suite together.
pub const ENGINES: [(CollectMode, usize); 4] = [
    (CollectMode::Reactor, 0),
    (CollectMode::Reactor, 2),
    (CollectMode::PollSweep, 0),
    (CollectMode::PollSweep, 2),
];
