//! Scale: one coordinator thread serves hundreds of chunk-streaming
//! loopback clients, with wake-ups that stay `O(events)` — not the
//! `O(clients × ticks)` receive attempts of the legacy poll sweep.
//!
//! The round runs a 255-client cohort (the old GF(256) cap — still the
//! ceiling for *complete-graph* rounds, though neighborhood-scoped
//! Shamir indexing lets sparse graphs seat thousands; see
//! `bench/cohort_scale`) plus
//! a 256th connection from an *unsampled* client, which the join loop
//! must reject mid-accept without disturbing anyone — 256 concurrent
//! connections into a single thread. The data plane is chunked and
//! several clients disconnect mid-stream, so the per-(stage, chunk)
//! dropout machinery runs at scale too.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use dordis_net::coordinator::{run_coordinator, CoordinatorConfig, DropKind};
use dordis_net::runtime::{
    run_client, ClientOptions, ClientRunOutcome, FailAction, FailPoint, FailStage,
};
use dordis_net::transport::LoopbackHub;
use dordis_secagg::client::ClientInput;
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};

const N: u32 = 255; // The complete-graph (GF(256)) ceiling; sparse rounds go higher.
const DIM: usize = 64;
const BITS: u32 = 16;
const CHUNKS: usize = 4;
const SEED: u64 = 77_777;

/// Clients that disconnect after streaming only part of their chunks.
const MIDSTREAM_DROPS: [u32; 6] = [10, 55, 101, 147, 198, 240];

fn input_for(id: ClientId) -> ClientInput {
    let mask = (1u64 << BITS) - 1;
    ClientInput {
        vector: (0..DIM)
            .map(|i| (u64::from(id) * 977 + i as u64 * 13) & mask)
            .collect(),
        noise_seeds: Vec::new(),
    }
}

#[test]
fn single_thread_serves_256_connections_with_o_events_wakeups() {
    let params = RoundParams {
        round: 3,
        clients: (0..N).collect(),
        threshold: 10,
        bit_width: BITS,
        vector_len: DIM,
        noise_components: 0,
        threat_model: ThreatModel::SemiHonest,
        graph: MaskingGraph::harary_for(N as usize),
    };
    params.validate().expect("valid scale params");

    let (hub, mut acceptor) = LoopbackHub::new();

    // The 256th connection: not in the sampled set, must be turned away
    // at join while everyone else proceeds. Connected *first* (the
    // acceptor hands connections out FIFO) so its rejection is
    // deterministically processed while the join loop is still running.
    let mut crasher_chan = hub.connect("extra").expect("connect");
    let crasher = std::thread::spawn(move || {
        let opts = ClientOptions {
            id: 999,
            rng_seed: SEED,
            fail: None,
            recv_timeout: Duration::from_secs(300),
            silent_linger: Duration::from_secs(1),
        };
        run_client(
            &mut crasher_chan,
            &opts,
            move |_| Ok(input_for(999)),
            |_| None,
        )
    });

    let mut handles = Vec::new();
    for id in 0..N {
        let hub = hub.clone();
        let fail = MIDSTREAM_DROPS.contains(&id).then_some(FailPoint {
            stage: FailStage::MaskedInputAfterChunks((id % CHUNKS as u32) as u16),
            action: FailAction::Disconnect,
        });
        handles.push(std::thread::spawn(move || {
            let mut chan = hub.connect(&format!("c{id}")).expect("connect");
            let opts = ClientOptions {
                id,
                rng_seed: SEED,
                fail,
                recv_timeout: Duration::from_secs(300),
                silent_linger: Duration::from_secs(1),
            };
            run_client(&mut chan, &opts, move |_| Ok(input_for(id)), |_| None)
        }));
    }
    // Generous deadlines: 255 debug-build clients share this machine's
    // cores, and the assertion below is about wake-ups, not wall-clock.
    let cfg = CoordinatorConfig::new(
        params,
        Duration::from_secs(240),
        Duration::from_secs(240),
        CHUNKS,
        None,
    );
    let start = Instant::now();
    let report = run_coordinator(&mut acceptor, &cfg).expect("coordinator");
    let elapsed = start.elapsed();

    // --- Protocol outcome at scale. ---
    let expected_dropped: Vec<ClientId> = MIDSTREAM_DROPS.to_vec();
    assert_eq!(report.outcome.dropped, expected_dropped);
    assert_eq!(
        report.outcome.survivors.len(),
        (N as usize) - MIDSTREAM_DROPS.len()
    );
    assert!(report.chunks > 1, "data plane actually chunked");
    for id in MIDSTREAM_DROPS {
        let det = report
            .dropouts
            .iter()
            .find(|d| d.client == id)
            .expect("midstream drop detected");
        assert_eq!(det.kind, DropKind::Disconnected);
        assert_eq!(det.stage, "MaskedInputCollection");
        assert_eq!(
            det.chunk,
            Some((id % CHUNKS as u32) as u16),
            "stream died at the first undelivered chunk"
        );
    }
    // The aggregate is exactly the survivors' sum.
    let mask = (1u64 << BITS) - 1;
    let mut expected = vec![0u64; DIM];
    for &id in &report.outcome.survivors {
        for (e, v) in expected.iter_mut().zip(input_for(id).vector) {
            *e = (*e + v) & mask;
        }
    }
    assert_eq!(report.outcome.sum, expected);

    // The unsampled 256th connection was told why it can't play.
    match crasher
        .join()
        .expect("crasher thread")
        .expect("crasher run")
    {
        ClientRunOutcome::ServerAborted { reason } => {
            assert!(reason.contains("not in the sampled set"), "{reason}");
        }
        other => panic!("extra client should be rejected, got {other:?}"),
    }
    let mut outcomes = BTreeMap::new();
    for (id, h) in handles.into_iter().enumerate() {
        outcomes.insert(id as u32, h.join().expect("client thread").expect("run"));
    }
    for (id, outcome) in outcomes {
        if MIDSTREAM_DROPS.contains(&id) {
            assert!(matches!(outcome, ClientRunOutcome::Failed { .. }), "{id}");
        } else {
            assert!(
                matches!(outcome, ClientRunOutcome::Finished { .. }),
                "client {id}: {outcome:?}"
            );
        }
    }

    // --- The reactor claim: wake-ups are O(events), not O(clients × ticks). ---
    let stats = report.reactor.expect("reactor mode");
    let ticks = (elapsed.as_millis() / cfg.tick.as_millis()).max(1) as u64;
    // Every poll is caused by an event batch, a timer tick during the
    // accept window, or one accept turn — never by per-client sweeping.
    let o_events_bound = stats.events + ticks + u64::from(N) + 64;
    assert!(
        stats.polls <= o_events_bound,
        "polls {} exceed O(events) bound {} (events {}, ticks {})",
        stats.polls,
        o_events_bound,
        stats.events,
        ticks
    );
    // The sweep's cost floor for the same round: every tick of the
    // masked-input collection alone re-polls every pending channel.
    let sweep_floor = u64::from(N) * ticks;
    assert!(
        stats.polls * 8 < sweep_floor,
        "polls {} not meaningfully below the sweep floor {}",
        stats.polls,
        sweep_floor
    );
    println!(
        "255+1 clients, {} chunks: {:?} wall, {} polls, {} events, {} timer fires",
        report.chunks, elapsed, stats.polls, stats.events, stats.timer_fires
    );
}
