//! Ledger balance of the shared byte pool under arbitrary schedules.
//!
//! The memory plane's core claim is an accounting identity: at every
//! point in time, the pool's live ingress gauge equals the bytes each
//! connection genuinely holds custody of (stream buffer + decoded
//! frames not yet recycled), no matter how pushes, frame takes,
//! recycles, pauses, and disconnects interleave — and a dropped
//! connection settles its whole ledger, so nothing leaks. These
//! properties drive the backpressure decisions (`should_pause`), so a
//! drift here silently turns the budget into fiction.

use dordis_net::pool::{BytePool, ChannelAccount};
use dordis_net::tcp::FrameBuffer;
use proptest::collection;
use proptest::prelude::*;

/// Deterministic payload bytes for frame `i` of length `len`.
fn payload(seed: u64, i: usize, len: usize) -> Vec<u8> {
    let mut x = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 56) as u8
        })
        .collect()
}

/// Length-prefixes and concatenates frames into one raw stream.
fn stream_of(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for f in frames {
        out.extend_from_slice(&(f.len() as u32).to_le_bytes());
        out.extend_from_slice(f);
    }
    out
}

/// One simulated connection: a real `FrameBuffer` charged to a real
/// `ChannelAccount`, plus the test's shadow ledger.
struct Conn {
    buf: FrameBuffer,
    acct: ChannelAccount,
    /// Scripted wire bytes not yet pushed.
    stream: Vec<u8>,
    fed: usize,
    /// Frames taken but not yet recycled (custody still charged).
    held: Vec<Vec<u8>>,
    /// Shadow ledger: what this connection should have charged.
    live: u64,
    paused: bool,
}

impl Conn {
    fn new(pool: &BytePool, seed: u64, frames: &[Vec<u8>]) -> Conn {
        let acct = pool.account();
        let mut buf = FrameBuffer::new();
        buf.attach_account(acct.clone());
        let _ = seed;
        Conn {
            buf,
            acct,
            stream: stream_of(frames),
            fed: 0,
            held: Vec::new(),
            live: 0,
            paused: false,
        }
    }
}

/// Decodes one schedule step out of a raw u64 (the vendored proptest
/// has no tuple strategies): `(connection index, op, size hint)`.
///
/// op 0..=2: push up to `hint` scripted bytes; 3: take one frame;
/// 4: recycle the oldest held frame; 5: toggle pause; 6: disconnect.
fn decode_op(x: u64) -> (usize, u8, usize) {
    let idx = (x & 0xFF) as usize;
    let op = ((x >> 8) % 7) as u8;
    let hint = ((x >> 16) & 0x1FF) as usize + 1;
    (idx, op, hint)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary interleavings of push / take / recycle / park /
    /// disconnect keep the pool's ledger balanced: live ingress always
    /// equals the surviving connections' shadow ledgers, retained pool
    /// bytes never exceed the retain cap, the paused gauge tracks the
    /// paused set, and dropping every connection settles to zero.
    #[test]
    fn interleaved_custody_keeps_the_ledger_balanced(
        seed in any::<u64>(),
        budget_raw in 0u64..262_144,
        per_conn_lens in collection::vec(
            collection::vec(0usize..400, 1..6), 2..5),
        raw_ops in collection::vec(any::<u64>(), 1..120),
    ) {
        // Small draws collapse to 0 = unlimited, so both budget regimes
        // are exercised.
        let budget = if budget_raw < 1024 { 0 } else { budget_raw };
        let pool = BytePool::new(budget);
        let mut conns: Vec<Option<Conn>> = per_conn_lens
            .iter()
            .enumerate()
            .map(|(c, lens)| {
                let frames: Vec<Vec<u8>> = lens
                    .iter()
                    .enumerate()
                    .map(|(i, &len)| payload(seed ^ c as u64, i, len))
                    .collect();
                Some(Conn::new(&pool, seed, &frames))
            })
            .collect();

        for (idx, op, hint) in raw_ops.into_iter().map(decode_op) {
            let slot = idx % conns.len();
            let Some(conn) = conns[slot].as_mut() else {
                continue; // already disconnected
            };
            match op {
                0..=2 => {
                    let n = hint.min(conn.stream.len() - conn.fed);
                    if n > 0 {
                        conn.buf.push(&conn.stream[conn.fed..conn.fed + n]);
                        conn.fed += n;
                        conn.live += n as u64;
                    }
                }
                3 => {
                    if let Some(frame) = conn.buf.take_frame().expect("valid stream") {
                        // The 4-byte prefix is consumed outright; the
                        // payload's custody moves into the held frame.
                        conn.live -= 4;
                        conn.held.push(frame);
                    }
                }
                4 => {
                    if !conn.held.is_empty() {
                        let frame = conn.held.remove(0);
                        conn.live -= frame.len() as u64;
                        conn.buf.recycle(frame);
                    }
                }
                5 => {
                    conn.paused = !conn.paused;
                    conn.acct.set_paused(conn.paused);
                }
                6 => {
                    // Disconnect with frames still held and bytes still
                    // buffered: the account drop must settle it all.
                    conns[slot] = None;
                }
                _ => unreachable!("op range is 0..7"),
            }

            let expected: u64 = conns
                .iter()
                .flatten()
                .map(|c| c.live)
                .sum();
            prop_assert_eq!(pool.live_ingress(), expected);
            prop_assert!(
                pool.pooled_bytes() <= pool.retain_cap(),
                "retained {} bytes exceeds cap {}",
                pool.pooled_bytes(),
                pool.retain_cap()
            );
            let paused: u64 = conns
                .iter()
                .flatten()
                .filter(|c| c.paused)
                .count() as u64;
            prop_assert_eq!(pool.paused_connections(), paused);
        }

        // Everything disconnects — even with un-recycled frames and
        // half-parsed streams in flight, the ledger settles to zero.
        conns.clear();
        prop_assert_eq!(pool.live_ingress(), 0);
        prop_assert_eq!(pool.connections(), 0);
        prop_assert_eq!(pool.paused_connections(), 0);
    }
}

/// A taken frame recycled *after* its producing buffer is gone still
/// settles: the account outlives the `FrameBuffer` only through the
/// test's clone, and dropping both zeroes the ledger even though the
/// held frame never went back.
#[test]
fn late_drop_of_held_frames_settles_ledger() {
    let pool = BytePool::new(0);
    let acct = pool.account();
    let mut buf = FrameBuffer::new();
    buf.attach_account(acct.clone());

    let frames = vec![payload(7, 0, 100), payload(7, 1, 50)];
    buf.push(&stream_of(&frames));
    let first = buf.take_frame().unwrap().unwrap();
    assert_eq!(first, frames[0]);
    // 158 pushed, one 4-byte prefix consumed.
    assert_eq!(pool.live_ingress(), 154);

    drop(buf); // second frame still buffered, first still held
    assert_eq!(
        pool.live_ingress(),
        154,
        "the test's account clone keeps the ledger open"
    );
    drop(acct); // last clone: settles buffered and held custody alike
    assert_eq!(pool.live_ingress(), 0, "leak on account drop");
    assert_eq!(pool.connections(), 0);
    drop(first);
}
