//! Chunked data-plane equivalence: a networked round that streams the
//! masked input as `m` chunk frames (collected, aggregated, and unmasked
//! per chunk) must stay bit-equal to the *unchunked* in-memory driver —
//! chunking is a transport/pipelining concern, never a semantic one.
//! Partial chunk streams are the new dropout mode: a client that stops
//! mid-stream never reaches U3, exactly like a missed single-frame
//! masked input.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use dordis_net::coordinator::{
    run_coordinator, CollectMode, CoordinatorConfig, DropKind, NetRoundReport,
};
use dordis_net::runtime::{run_client, ClientOptions, FailAction, FailPoint, FailStage};
use dordis_net::transport::LoopbackHub;
use dordis_secagg::client::{ClientInput, Identity};
use dordis_secagg::driver::{run_round, signing_key_for, DropStage, DropoutSchedule, RoundSpec};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::server::RoundOutcome;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};

mod common;
use common::ENGINES;

const BITS: u32 = 16;
const DIM: usize = 48;
const SEED: u64 = 31_337;

fn params(n: u32, threshold: usize, noise_components: usize) -> RoundParams {
    RoundParams {
        round: 9,
        clients: (0..n).collect(),
        threshold,
        bit_width: BITS,
        vector_len: DIM,
        noise_components,
        threat_model: ThreatModel::SemiHonest,
        graph: MaskingGraph::Complete,
    }
}

fn inputs(n: u32, noise_components: usize) -> BTreeMap<ClientId, ClientInput> {
    let seeds = if noise_components == 0 {
        0
    } else {
        noise_components + 1
    };
    (0..n)
        .map(|id| {
            (
                id,
                ClientInput {
                    vector: (0..DIM)
                        .map(|i| (u64::from(id) * 211 + i as u64 * 13) & ((1 << BITS) - 1))
                        .collect(),
                    noise_seeds: vec![[id as u8 + 1; 32]; seeds],
                },
            )
        })
        .collect()
}

fn driver_round(
    params: &RoundParams,
    inputs: &BTreeMap<ClientId, ClientInput>,
    drops: &[(ClientId, DropStage)],
) -> RoundOutcome {
    let mut dropout = DropoutSchedule::none();
    for &(id, stage) in drops {
        dropout.drop_at(id, stage);
    }
    let (outcome, _) = run_round(RoundSpec {
        params: params.clone(),
        inputs: inputs.clone(),
        dropout,
        rng_seed: SEED,
    })
    .expect("driver round");
    outcome
}

fn net_round(
    params: &RoundParams,
    inputs: &BTreeMap<ClientId, ClientInput>,
    fails: &BTreeMap<ClientId, FailPoint>,
    chunks: usize,
    stage_timeout: Duration,
    (mode, workers): (CollectMode, usize),
) -> NetRoundReport {
    let (hub, mut acceptor) = LoopbackHub::new();
    let registry: Option<Arc<BTreeMap<ClientId, _>>> =
        if params.threat_model == ThreatModel::Malicious {
            Some(Arc::new(
                params
                    .clients
                    .iter()
                    .map(|&id| (id, signing_key_for(SEED, id).verifying_key()))
                    .collect(),
            ))
        } else {
            None
        };
    let mut handles = Vec::new();
    for &id in &params.clients {
        let hub = hub.clone();
        let input = inputs[&id].clone();
        let fail = fails.get(&id).copied();
        let registry = registry.clone();
        handles.push(std::thread::spawn(move || {
            let mut chan = hub.connect(&format!("c{id}")).expect("connect");
            let opts = ClientOptions {
                id,
                rng_seed: SEED,
                fail,
                recv_timeout: Duration::from_secs(20),
                silent_linger: Duration::from_secs(2),
            };
            run_client(
                &mut chan,
                &opts,
                move |_| Ok(input),
                move |_| {
                    registry.map(|reg| Identity {
                        signing: signing_key_for(SEED, id),
                        registry: reg,
                    })
                },
            )
        }));
    }
    let report = run_coordinator(
        &mut acceptor,
        &CoordinatorConfig::new(
            params.clone(),
            Duration::from_secs(10),
            stage_timeout,
            chunks,
            None,
        )
        .with_mode(mode)
        .with_workers(workers),
    )
    .expect("coordinator");
    for h in handles {
        h.join().expect("client thread").expect("client run");
    }
    report
}

fn assert_equivalent(driver: &RoundOutcome, net: &NetRoundReport) {
    assert_eq!(driver.sum, net.outcome.sum, "aggregate sums differ");
    assert_eq!(
        driver.survivors, net.outcome.survivors,
        "survivor sets differ"
    );
    assert_eq!(driver.dropped, net.outcome.dropped, "dropped sets differ");
    let sort = |o: &RoundOutcome| {
        let mut s = o.removal_seeds.clone();
        s.sort();
        s
    };
    assert_eq!(sort(driver), sort(&net.outcome), "removal seeds differ");
}

#[test]
fn chunked_rounds_match_unchunked_driver_across_m() {
    // m ∈ {1, 4, 8} × both collection engines: the realized per-chunk
    // wire/aggregation path must reproduce the unchunked driver bit for
    // bit (XNoise bookkeeping included — every client carries noise
    // seeds here), whether frames are discovered by reactor readiness
    // or by the legacy poll sweep.
    let p = params(8, 5, 2);
    let ins = inputs(8, 2);
    let d = driver_round(&p, &ins, &[]);
    for mode in ENGINES {
        for m in [1usize, 4, 8] {
            let n = net_round(&p, &ins, &BTreeMap::new(), m, Duration::from_secs(5), mode);
            assert_equivalent(&d, &n);
            assert!(
                n.chunks >= 1 && n.chunks <= m,
                "realized {} of {m}",
                n.chunks
            );
            assert!(n.dropouts.is_empty(), "{mode:?} m={m}: {:?}", n.dropouts);
            assert_eq!(
                n.reactor.is_some(),
                mode.0 == CollectMode::Reactor,
                "stats reported by the wrong engine"
            );
        }
    }
}

#[test]
fn midstream_disconnect_is_a_detected_chunk_dropout() {
    // Client 2 sends 2 of 4 chunk frames and disconnects: the partial
    // stream must be detected as a dropout at the chunk it stopped at,
    // and the aggregate must equal the driver's BeforeMaskedInput drop.
    let p = params(8, 5, 2);
    let ins = inputs(8, 2);
    let fails: BTreeMap<ClientId, FailPoint> = [(
        2u32,
        FailPoint {
            stage: FailStage::MaskedInputAfterChunks(2),
            action: FailAction::Disconnect,
        },
    )]
    .into_iter()
    .collect();
    let d = driver_round(&p, &ins, &[(2, DropStage::BeforeMaskedInput)]);
    for mode in ENGINES {
        let n = net_round(&p, &ins, &fails, 4, Duration::from_secs(5), mode);
        assert_equivalent(&d, &n);
        assert_eq!(n.outcome.dropped, vec![2]);
        let det = n
            .dropouts
            .iter()
            .find(|x| x.client == 2)
            .expect("client 2 detected");
        assert_eq!(det.kind, DropKind::Disconnected);
        assert_eq!(det.stage, "MaskedInputCollection");
        assert_eq!(
            det.chunk,
            Some(2),
            "{mode:?}: detected at the chunk the stream died"
        );
    }
}

#[test]
fn midstream_silence_hits_the_per_chunk_deadline() {
    // Same partial stream, but the client stays connected and silent:
    // only the *per-chunk* stage deadline can catch it.
    let p = params(6, 4, 0);
    let ins = inputs(6, 0);
    let fails: BTreeMap<ClientId, FailPoint> = [(
        3u32,
        FailPoint {
            stage: FailStage::MaskedInputAfterChunks(1),
            action: FailAction::Silent,
        },
    )]
    .into_iter()
    .collect();
    let d = driver_round(&p, &ins, &[(3, DropStage::BeforeMaskedInput)]);
    for mode in ENGINES {
        let n = net_round(&p, &ins, &fails, 4, Duration::from_millis(700), mode);
        assert_equivalent(&d, &n);
        let det = n
            .dropouts
            .iter()
            .find(|x| x.client == 3)
            .expect("client 3 detected");
        assert_eq!(det.kind, DropKind::DeadlineMissed, "{mode:?}");
        assert_eq!(det.stage, "MaskedInputCollection");
        assert_eq!(det.chunk, Some(1));
    }
}

#[test]
fn chunked_xnoise_recovery_with_unmasking_dropout() {
    // A client that vanishes *after* its full chunk stream but before
    // unmasking exercises stage 5 (noise-seed recovery) — whose
    // collection the coordinator interleaves with per-chunk unmasking.
    let p = params(8, 5, 3);
    let ins = inputs(8, 3);
    let fails: BTreeMap<ClientId, FailPoint> = [(
        4u32,
        FailPoint {
            stage: FailStage::Unmasking,
            action: FailAction::Disconnect,
        },
    )]
    .into_iter()
    .collect();
    let d = driver_round(&p, &ins, &[(4, DropStage::BeforeUnmasking)]);
    for mode in ENGINES {
        let n = net_round(&p, &ins, &fails, 4, Duration::from_secs(5), mode);
        assert_equivalent(&d, &n);
        // Client 4 is in U3 (its chunks all arrived) but not in U5.
        assert!(n.outcome.survivors.contains(&4));
        assert!(n.stats.stage("ExcessiveNoiseRemoval").is_some());
    }
}
