//! The non-blocking frame codec path: `FrameBuffer` must reassemble a
//! frame stream byte-equal to the whole-frame read no matter how the
//! bytes are split across reads, and `WriteBuffer` must drain interleaved
//! partial writes into the identical stream no matter how the socket
//! slices (or `WouldBlock`s) the writes. These two buffers are what the
//! reactor-mode `TcpChannel` runs on, so their invariants are the wire
//! correctness of the event loop.

use std::io::{ErrorKind, Write};

use dordis_net::tcp::{FrameBuffer, WriteBuffer};
use dordis_net::NetError;
use proptest::collection;
use proptest::prelude::*;

/// Deterministic payload bytes for frame `i` of length `len`.
fn payload(seed: u64, i: usize, len: usize) -> Vec<u8> {
    let mut x = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 56) as u8
        })
        .collect()
}

/// Length-prefixes and concatenates frames into one raw stream.
fn stream_of(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for f in frames {
        out.extend_from_slice(&(f.len() as u32).to_le_bytes());
        out.extend_from_slice(f);
    }
    out
}

/// Feeds a raw stream into a `FrameBuffer` in the given byte splits
/// (cycling through `cuts`), popping frames as they complete.
fn reassemble(stream: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut buf = FrameBuffer::new();
    let mut out = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < stream.len() {
        let n = cuts[i % cuts.len()].min(stream.len() - pos);
        i += 1;
        buf.push(&stream[pos..pos + n]);
        pos += n;
        while let Some(frame) = buf.take_frame().expect("valid stream") {
            out.push(frame);
        }
    }
    assert!(buf.is_empty(), "stream fully consumed");
    out
}

/// A writer that accepts at most `caps[i]` bytes on the `i`-th call
/// (cycling), surfacing `WouldBlock` when the cap is zero — the shape of
/// a socket under backpressure.
struct DribbleWriter {
    written: Vec<u8>,
    caps: Vec<usize>,
    call: usize,
    would_blocks: usize,
}

impl Write for DribbleWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let cap = self.caps[self.call % self.caps.len()];
        self.call += 1;
        if cap == 0 {
            self.would_blocks += 1;
            return Err(std::io::Error::new(ErrorKind::WouldBlock, "backpressure"));
        }
        let n = cap.min(buf.len());
        self.written.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A frame delivered in arbitrary byte-split sequences reassembles
    /// byte-equal to the whole-frame read.
    #[test]
    fn arbitrary_splits_reassemble_byte_equal(
        seed in any::<u64>(),
        lens in collection::vec(0usize..200, 1..7),
        cuts in collection::vec(1usize..17, 1..32),
    ) {
        let frames: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| payload(seed, i, len))
            .collect();
        let stream = stream_of(&frames);

        // Ground truth: the whole stream in one push.
        let whole = reassemble(&stream, &[stream.len().max(1)]);
        prop_assert_eq!(&whole, &frames);

        // Arbitrary split sequence: identical output.
        let split = reassemble(&stream, &cuts);
        prop_assert_eq!(&split, &frames);
    }

    /// Interleaved partial writes drain into the byte-identical stream
    /// under (simulated) write readiness, regardless of how the socket
    /// slices each write or how often it signals WouldBlock.
    #[test]
    fn interleaved_partial_writes_drain_correctly(
        seed in any::<u64>(),
        lens in collection::vec(0usize..200, 1..7),
        caps in collection::vec(0usize..33, 1..16),
    ) {
        // At least one cap must make progress or draining can't finish.
        let mut caps = caps;
        if caps.iter().all(|&c| c == 0) {
            caps.push(7);
        }
        let frames: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| payload(seed, i, len))
            .collect();

        let mut outbox = WriteBuffer::new();
        let mut sink = DribbleWriter {
            written: Vec::new(),
            caps,
            call: 0,
            would_blocks: 0,
        };
        // Interleave queueing with partial drains: frame k+1 is queued
        // while frame k may still sit half-written in the buffer.
        for f in &frames {
            outbox.queue_frame(f);
            let _ = outbox.write_to(&mut sink).expect("no real I/O error");
        }
        // Drive "write readiness" until fully drained.
        let mut rounds = 0;
        while !outbox.write_to(&mut sink).expect("no real I/O error") {
            rounds += 1;
            prop_assert!(rounds < 100_000, "outbox never drained");
        }
        prop_assert!(outbox.is_empty());
        prop_assert_eq!(&sink.written, &stream_of(&frames));
    }
}

#[test]
fn oversized_frame_poisons_the_stream() {
    let mut buf = FrameBuffer::new();
    buf.push(&u32::MAX.to_le_bytes());
    buf.push(&[0u8; 8]);
    assert!(matches!(buf.take_frame(), Err(NetError::Codec(_))));
}

#[test]
fn needed_tracks_header_then_body() {
    let mut buf = FrameBuffer::new();
    assert_eq!(buf.needed(), 4, "nothing buffered: need the prefix");
    buf.push(&7u32.to_le_bytes());
    assert_eq!(buf.needed(), 11, "prefix read: need 7 payload bytes");
    buf.push(b"abc");
    assert!(buf.take_frame().unwrap().is_none(), "frame incomplete");
    buf.push(b"defg");
    assert_eq!(buf.take_frame().unwrap().unwrap(), b"abcdefg");
    assert_eq!(buf.needed(), 4, "consumed: back to prefix");
}

#[test]
fn empty_frames_roundtrip() {
    let frames = vec![Vec::new(), b"x".to_vec(), Vec::new()];
    let stream = stream_of(&frames);
    assert_eq!(reassemble(&stream, &[1]), frames);
}
