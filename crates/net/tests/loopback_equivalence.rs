//! Transport equivalence: the same round (same seed, same inputs, same
//! dropout pattern) executed through the in-memory driver and through a
//! loopback `dordis-net` deployment must produce the identical aggregate
//! sum, survivor set, and recovered XNoise removal seeds.
//!
//! The client runtime derives its per-client RNGs exactly as the driver
//! does, so the equivalence is bit-for-bit, not just distributional.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use dordis_net::coordinator::{
    run_coordinator, CollectMode, CoordinatorConfig, DropKind, NetRoundReport,
};
use dordis_net::runtime::{run_client, ClientOptions, FailAction, FailPoint, FailStage};
use dordis_net::transport::LoopbackHub;
use dordis_secagg::client::{ClientInput, Identity};
use dordis_secagg::driver::{run_round, signing_key_for, DropStage, DropoutSchedule, RoundSpec};
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::server::RoundOutcome;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};

mod common;
use common::ENGINES;

const BITS: u32 = 16;
const DIM: usize = 12;
const SEED: u64 = 424_242;

fn params(n: u32, threshold: usize, graph: MaskingGraph, threat: ThreatModel) -> RoundParams {
    RoundParams {
        round: 7,
        clients: (0..n).collect(),
        threshold,
        bit_width: BITS,
        vector_len: DIM,
        noise_components: 2,
        threat_model: threat,
        graph,
    }
}

fn inputs(n: u32) -> BTreeMap<ClientId, ClientInput> {
    (0..n)
        .map(|id| {
            (
                id,
                ClientInput {
                    vector: (0..DIM)
                        .map(|i| (u64::from(id) * 131 + i as u64 * 17) & ((1 << BITS) - 1))
                        .collect(),
                    noise_seeds: vec![[id as u8 + 1; 32]; 3],
                },
            )
        })
        .collect()
}

/// Runs the identical round through the driver.
fn driver_round(
    params: &RoundParams,
    inputs: &BTreeMap<ClientId, ClientInput>,
    drops: &[(ClientId, DropStage)],
) -> RoundOutcome {
    let mut dropout = DropoutSchedule::none();
    for &(id, stage) in drops {
        dropout.drop_at(id, stage);
    }
    let (outcome, _) = run_round(RoundSpec {
        params: params.clone(),
        inputs: inputs.clone(),
        dropout,
        rng_seed: SEED,
    })
    .expect("driver round");
    outcome
}

/// Runs the identical round through loopback dordis-net.
fn net_round(
    params: &RoundParams,
    inputs: &BTreeMap<ClientId, ClientInput>,
    fails: &BTreeMap<ClientId, FailPoint>,
    stage_timeout: Duration,
    mode: CollectMode,
    workers: usize,
) -> NetRoundReport {
    let (hub, mut acceptor) = LoopbackHub::new();
    let registry: Option<Arc<BTreeMap<ClientId, _>>> =
        if params.threat_model == ThreatModel::Malicious {
            Some(Arc::new(
                params
                    .clients
                    .iter()
                    .map(|&id| (id, signing_key_for(SEED, id).verifying_key()))
                    .collect(),
            ))
        } else {
            None
        };

    let mut handles = Vec::new();
    for &id in &params.clients {
        let hub = hub.clone();
        let input = inputs[&id].clone();
        let fail = fails.get(&id).copied();
        let registry = registry.clone();
        handles.push(std::thread::spawn(move || {
            let mut chan = hub.connect(&format!("c{id}")).expect("connect");
            let opts = ClientOptions {
                id,
                rng_seed: SEED,
                fail,
                recv_timeout: Duration::from_secs(20),
                silent_linger: Duration::from_secs(4),
            };
            run_client(
                &mut chan,
                &opts,
                move |_| Ok(input),
                move |_| {
                    registry.map(|reg| Identity {
                        signing: signing_key_for(SEED, id),
                        registry: reg,
                    })
                },
            )
        }));
    }
    let report = run_coordinator(
        &mut acceptor,
        &CoordinatorConfig::single(params.clone(), Duration::from_secs(10), stage_timeout)
            .with_mode(mode)
            .with_workers(workers),
    )
    .expect("coordinator");
    for h in handles {
        h.join().expect("client thread").expect("client run");
    }
    report
}

fn sorted_seeds(outcome: &RoundOutcome) -> Vec<(ClientId, usize, [u8; 32])> {
    let mut seeds = outcome.removal_seeds.clone();
    seeds.sort();
    seeds
}

fn assert_equivalent(driver: &RoundOutcome, net: &NetRoundReport) {
    assert_eq!(driver.sum, net.outcome.sum, "aggregate sums differ");
    assert_eq!(
        driver.survivors, net.outcome.survivors,
        "survivor sets differ"
    );
    assert_eq!(driver.dropped, net.outcome.dropped, "dropped sets differ");
    assert_eq!(
        sorted_seeds(driver),
        sorted_seeds(&net.outcome),
        "removal seeds differ"
    );
}

fn expected_sum(inputs: &BTreeMap<ClientId, ClientInput>, survivors: &[ClientId]) -> Vec<u64> {
    let mut sum = vec![0u64; DIM];
    for id in survivors {
        for (s, v) in sum.iter_mut().zip(inputs[id].vector.iter()) {
            *s = (*s + *v) & ((1 << BITS) - 1);
        }
    }
    sum
}

#[test]
fn equivalent_no_dropout_xnoise_round() {
    // XNoise-enabled at the protocol layer: every client carries T=2
    // shared noise-seed components that the server must hand back.
    let p = params(8, 5, MaskingGraph::Complete, ThreatModel::SemiHonest);
    let ins = inputs(8);
    let d = driver_round(&p, &ins, &[]);
    for (mode, workers) in ENGINES {
        let n = net_round(
            &p,
            &ins,
            &BTreeMap::new(),
            Duration::from_secs(5),
            mode,
            workers,
        );
        assert_equivalent(&d, &n);
        assert_eq!(d.sum, expected_sum(&ins, &d.survivors));
        assert_eq!(n.outcome.survivors.len(), 8);
        assert!(n.dropouts.is_empty(), "{mode:?}: {:?}", n.dropouts);
        // Every survivor's seeds for components 1..=2 were recovered.
        assert_eq!(sorted_seeds(&n.outcome).len(), 16);
    }
}

#[test]
fn equivalent_with_disconnect_dropouts() {
    let p = params(8, 5, MaskingGraph::Complete, ThreatModel::SemiHonest);
    let ins = inputs(8);
    let drops = [
        (2, DropStage::BeforeMaskedInput),
        (6, DropStage::BeforeMaskedInput),
    ];
    let fails: BTreeMap<ClientId, FailPoint> = [2u32, 6]
        .into_iter()
        .map(|id| {
            (
                id,
                FailPoint {
                    stage: FailStage::MaskedInput,
                    action: FailAction::Disconnect,
                },
            )
        })
        .collect();
    let d = driver_round(&p, &ins, &drops);
    for (mode, workers) in ENGINES {
        let n = net_round(&p, &ins, &fails, Duration::from_secs(5), mode, workers);
        assert_equivalent(&d, &n);
        assert_eq!(n.outcome.dropped, vec![2, 6]);
        assert!(n
            .dropouts
            .iter()
            .any(|x| x.client == 2 && x.kind == DropKind::Disconnected));
    }
}

#[test]
fn equivalent_secagg_plus_sparse_graph() {
    let p = params(12, 6, MaskingGraph::harary_for(12), ThreatModel::SemiHonest);
    let ins = inputs(12);
    let drops = [(4, DropStage::BeforeMaskedInput)];
    let fails: BTreeMap<ClientId, FailPoint> = [(
        4u32,
        FailPoint {
            stage: FailStage::MaskedInput,
            action: FailAction::Disconnect,
        },
    )]
    .into_iter()
    .collect();
    let d = driver_round(&p, &ins, &drops);
    for (mode, workers) in ENGINES {
        let n = net_round(&p, &ins, &fails, Duration::from_secs(5), mode, workers);
        assert_equivalent(&d, &n);
    }
}

#[test]
fn equivalent_malicious_model_round() {
    let p = params(8, 5, MaskingGraph::Complete, ThreatModel::Malicious);
    let ins = inputs(8);
    let drops = [(1, DropStage::BeforeMaskedInput)];
    let fails: BTreeMap<ClientId, FailPoint> = [(
        1u32,
        FailPoint {
            stage: FailStage::MaskedInput,
            action: FailAction::Disconnect,
        },
    )]
    .into_iter()
    .collect();
    let d = driver_round(&p, &ins, &drops);
    for (mode, workers) in ENGINES {
        let n = net_round(&p, &ins, &fails, Duration::from_secs(5), mode, workers);
        assert_equivalent(&d, &n);
        assert!(n.stats.stage("ConsistencyCheck").is_some());
    }
}

#[test]
fn silent_client_detected_by_stage_deadline() {
    // The client stays connected but never sends its masked input; only
    // the per-stage deadline can catch this one.
    let p = params(6, 4, MaskingGraph::Complete, ThreatModel::SemiHonest);
    let ins = inputs(6);
    let fails: BTreeMap<ClientId, FailPoint> = [(
        3u32,
        FailPoint {
            stage: FailStage::MaskedInput,
            action: FailAction::Silent,
        },
    )]
    .into_iter()
    .collect();
    let d = driver_round(&p, &ins, &[(3, DropStage::BeforeMaskedInput)]);
    for (mode, workers) in ENGINES {
        let n = net_round(&p, &ins, &fails, Duration::from_millis(900), mode, workers);
        assert_equivalent(&d, &n);
        let detection = n
            .dropouts
            .iter()
            .find(|x| x.client == 3)
            .expect("client 3 detected");
        assert_eq!(detection.kind, DropKind::DeadlineMissed, "{mode:?}");
        assert_eq!(detection.stage, "MaskedInputCollection");
    }
}

#[test]
fn never_joining_client_is_an_advertise_dropout() {
    // Client 5 never connects at all; the round proceeds without it.
    let p = params(6, 4, MaskingGraph::Complete, ThreatModel::SemiHonest);
    let ins = inputs(6);

    let (hub, mut acceptor) = LoopbackHub::new();
    let mut handles = Vec::new();
    for &id in &p.clients {
        if id == 5 {
            continue;
        }
        let hub = hub.clone();
        let input = ins[&id].clone();
        handles.push(std::thread::spawn(move || {
            let mut chan = hub.connect(&format!("c{id}")).expect("connect");
            let opts = ClientOptions {
                id,
                rng_seed: SEED,
                fail: None,
                recv_timeout: Duration::from_secs(20),
                silent_linger: Duration::from_secs(1),
            };
            run_client(&mut chan, &opts, move |_| Ok(input), |_| None)
        }));
    }
    let report = run_coordinator(
        &mut acceptor,
        &CoordinatorConfig::single(
            p.clone(),
            Duration::from_millis(800),
            Duration::from_secs(5),
        ),
    )
    .expect("coordinator");
    for h in handles {
        h.join().unwrap().unwrap();
    }
    assert_eq!(report.outcome.dropped, vec![5]);
    assert!(report
        .dropouts
        .iter()
        .any(|d| d.client == 5 && d.kind == DropKind::NeverJoined));

    // And it matches the driver with a BeforeAdvertise drop.
    let d = driver_round(&p, &ins, &[(5, DropStage::BeforeAdvertise)]);
    assert_eq!(d.sum, report.outcome.sum);
    assert_eq!(d.survivors, report.outcome.survivors);
}
