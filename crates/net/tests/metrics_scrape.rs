//! Live observability: a session serving its Prometheus endpoint off
//! the reactor's own epoll loop is scraped *while rounds run*, the
//! reactor's O(events) discipline must survive the scrape traffic, and
//! the exported span timeline must cover every round, stage, and chunk
//! the session executed.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dordis_net::coordinator::{CollectMode, CoordinatorConfig};
use dordis_net::faults::FaultPlan;
use dordis_net::runtime::{run_session_client, SessionClientOptions, SessionEndKind};
use dordis_net::session::{Seating, Session, SessionConfig};
use dordis_net::transport::LoopbackHub;
use dordis_secagg::client::ClientInput;
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};
use dordis_telemetry::Telemetry;

const BITS: u32 = 16;
const DIM: usize = 16;
const SEED: u64 = 424_242;
const N: u32 = 4;
const CHUNKS: usize = 3;
const ROUNDS: u64 = 2;

fn params_for_round(round: u64) -> RoundParams {
    RoundParams {
        round,
        clients: (0..N).collect(),
        threshold: 3,
        bit_width: BITS,
        vector_len: DIM,
        noise_components: 0,
        threat_model: ThreatModel::SemiHonest,
        graph: MaskingGraph::Complete,
    }
}

fn input_for(id: ClientId, round: u64) -> ClientInput {
    let mask = (1u64 << BITS) - 1;
    ClientInput {
        vector: (0..DIM)
            .map(|i| (u64::from(id) * 131 + round * 977 + i as u64 * 17) & mask)
            .collect(),
        noise_seeds: Vec::new(),
    }
}

/// One blocking HTTP GET against the scrape endpoint.
fn scrape(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect scrape endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut page = String::new();
    stream.read_to_string(&mut page).expect("read response");
    page
}

#[test]
fn live_scrape_mid_round_with_full_trace_coverage() {
    let telemetry = Telemetry::enabled();
    let (hub, mut acceptor) = LoopbackHub::new();
    let mut client_handles = Vec::new();
    for id in 0..N {
        let hub = hub.clone();
        client_handles.push(std::thread::spawn(move || {
            let mut chan = hub.connect(&format!("c{id}")).expect("connect");
            let opts = SessionClientOptions {
                id,
                rng_seed: SEED,
                recv_timeout: Duration::from_secs(30),
                silent_linger: Duration::from_secs(1),
            };
            let report = run_session_client(
                &mut chan,
                &opts,
                |_| None,
                |_| None,
                |r, _params, _cohort, _payload| Ok(input_for(id, r)),
                |_| None,
            )
            .expect("session client");
            assert!(matches!(report.end, SessionEndKind::Ended));
        }));
    }

    let cfg = SessionConfig {
        first_round: 1,
        rounds: ROUNDS,
        join_timeout: Duration::from_secs(10),
        stage_timeout: Duration::from_secs(10),
        chunks: CHUNKS,
        // Slow the unmask barrier down so the scraper provably lands
        // mid-round, and route the jobs through the worker pool so the
        // timeline gets spans from worker threads too.
        chunk_compute: Some(Duration::from_millis(25)),
        tick: CoordinatorConfig::DEFAULT_TICK,
        mode: CollectMode::Reactor,
        workers: 2,
        shards: 1,
        ingress_budget: 0,
        announce: true,
        population: (0..N).collect(),
        seating: Seating::Roster,
        params_for: Box::new(|round, _| params_for_round(round)),
        telemetry: telemetry.clone(),
        metrics_addr: Some("127.0.0.1:0".to_string()),
        replica: None,
        faults: FaultPlan::none(),
    };
    let mut session = Session::new(&mut acceptor, cfg).expect("session");
    let addr = session.metrics_addr().expect("scrape endpoint bound");

    // The scraper hammers the endpoint concurrently with the rounds:
    // every page it gets back must be a complete 200 with the reactor
    // counters on it.
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut pages = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let page = scrape(addr);
                assert!(
                    page.starts_with("HTTP/1.1 200 OK"),
                    "bad response: {page:?}"
                );
                assert!(page.contains("text/plain"), "missing content type");
                assert!(
                    page.contains("# TYPE dordis_reactor_polls_total counter"),
                    "reactor counters missing from the page"
                );
                pages += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            pages
        })
    };

    let mut reports = Vec::new();
    reports.push(session.run_round(&[]).expect("round 1"));
    // Stop the scraper *between* the rounds: round 2's polling services
    // any GET still in flight, and nothing scrapes after the session
    // goes quiet (the reactor only polls while a round runs).
    stop.store(true, Ordering::SeqCst);
    reports.push(session.run_round(&[]).expect("round 2"));
    let pages = scraper.join().expect("scraper thread");
    session.finish();
    for h in client_handles {
        h.join().expect("client thread");
    }
    assert!(pages > 0, "the scraper never completed a GET");

    // O(events) must survive the scrape listener riding on the same
    // epoll loop: every scrape connection's readiness is itself an
    // event, so polls stay bounded by events + timer fires (plus the
    // join phases' idle ticks).
    let stats = reports
        .last()
        .expect("reports")
        .reactor_session
        .expect("reactor engine");
    assert!(
        stats.polls <= stats.events + stats.timer_fires + 64,
        "polls {} outgrew events {} + timer fires {}",
        stats.polls,
        stats.events,
        stats.timer_fires
    );
    let final_page = telemetry.render_prometheus();
    let scrapes: u64 = final_page
        .lines()
        .find_map(|l| l.strip_prefix("dordis_metrics_scrapes_total "))
        .expect("scrape counter on the page")
        .parse()
        .expect("numeric scrape count");
    assert_eq!(scrapes, pages, "every GET is counted exactly once");

    // ---- Trace coverage: every (round, stage, chunk) plus compute
    // jobs and the session phases. ----
    let spans = telemetry.spans();
    let has = |cat: &str, name: &str, round: u64, chunk: Option<u16>| {
        spans
            .iter()
            .any(|s| s.cat == cat && s.name == name && s.round == round && s.chunk == chunk)
    };
    for (i, report) in reports.iter().enumerate() {
        let round = i as u64 + 1;
        assert!(has("round", "round", round, None), "round {round} span");
        assert!(has("session", "join", round, None), "join span {round}");
        assert!(
            has("session", "seating", round, None),
            "seating span {round}"
        );
        for stage in [
            "Setup",
            "AdvertiseKeys",
            "ShareKeys",
            "MaskedInputCollection",
            "Unmasking",
        ] {
            assert!(
                has("stage", stage, round, None),
                "stage span {stage} missing in round {round}"
            );
        }
        for chunk in 0..report.chunks {
            assert!(
                has("chunk", "chunk", round, Some(chunk as u16)),
                "chunk {chunk} span missing in round {round}"
            );
            assert!(
                has("compute", "unmask_job", round, Some(chunk as u16)),
                "unmask job span missing for chunk {chunk} in round {round}"
            );
        }
    }
    // The second round's start closes the first inter-round park span.
    assert!(has("session", "park", 2, None), "park span");

    // The exported timeline is valid Chrome-tracing JSON covering the
    // same spans (coarse shape check; CI validates with a real parser).
    let trace = telemetry.export_chrome_trace();
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.contains("\"ph\":\"X\""));
    assert!(trace.contains("\"name\":\"MaskedInputCollection\""));
}

#[test]
fn sharded_session_federates_shard_metrics_through_one_endpoint() {
    // Two aggregation shards share the session's telemetry registry:
    // the single reactor-served scrape endpoint must answer while the
    // shard threads run, the rendered page must carry per-shard label
    // coverage, and the span timeline must place each shard's stage
    // work under its own trace process (pid).
    const SN: u32 = 6; // splitmix64 splits 0..6 into {2,4,5} / {0,1,3}
    let telemetry = Telemetry::enabled();
    let (hub, mut acceptor) = LoopbackHub::new();
    let mut client_handles = Vec::new();
    for id in 0..SN {
        let hub = hub.clone();
        client_handles.push(std::thread::spawn(move || {
            let mut chan = hub.connect(&format!("c{id}")).expect("connect");
            let opts = SessionClientOptions {
                id,
                rng_seed: SEED,
                recv_timeout: Duration::from_secs(30),
                silent_linger: Duration::from_secs(1),
            };
            let report = run_session_client(
                &mut chan,
                &opts,
                |_| None,
                |_| None,
                |r, _params, _cohort, _payload| Ok(input_for(id, r)),
                |_| None,
            )
            .expect("session client");
            assert!(matches!(report.end, SessionEndKind::Ended));
        }));
    }

    let cfg = SessionConfig {
        first_round: 1,
        rounds: ROUNDS,
        join_timeout: Duration::from_secs(10),
        stage_timeout: Duration::from_secs(10),
        chunks: CHUNKS,
        chunk_compute: Some(Duration::from_millis(10)),
        tick: CoordinatorConfig::DEFAULT_TICK,
        mode: CollectMode::Reactor,
        workers: 0,
        shards: 2,
        ingress_budget: 0,
        announce: true,
        population: (0..SN).collect(),
        seating: Seating::Roster,
        params_for: Box::new(|round, _| RoundParams {
            round,
            clients: (0..SN).collect(),
            threshold: SN as usize / 2 + 1,
            bit_width: BITS,
            vector_len: DIM,
            noise_components: 0,
            threat_model: ThreatModel::SemiHonest,
            graph: MaskingGraph::Complete,
        }),
        telemetry: telemetry.clone(),
        metrics_addr: Some("127.0.0.1:0".to_string()),
        replica: None,
        faults: FaultPlan::none(),
    };
    let mut session = Session::new(&mut acceptor, cfg).expect("session");
    let addr = session.metrics_addr().expect("scrape endpoint bound");

    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut pages = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let page = scrape(addr);
                assert!(page.starts_with("HTTP/1.1 200 OK"), "bad response");
                pages += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            pages
        })
    };

    session.run_round(&[]).expect("round 1");
    stop.store(true, Ordering::SeqCst);
    session.run_round(&[]).expect("round 2");
    let pages = scraper.join().expect("scraper thread");
    session.finish();
    for h in client_handles {
        h.join().expect("client thread");
    }
    assert!(pages > 0, "the endpoint never answered while shards ran");

    // Per-shard label coverage on the (shared) rendered page: the
    // shard reactors and machines record through shard-scoped handles,
    // so both shards' frame counters must be visible with their label.
    let page = telemetry.render_prometheus();
    for shard in ["shard=\"0\"", "shard=\"1\""] {
        assert!(page.contains(shard), "no {shard} metrics on the page");
    }

    // Span timeline: session phases stay on the session process
    // (pid 1); each shard's protocol stages run under its own pid.
    let spans = telemetry.spans();
    assert!(
        spans
            .iter()
            .any(|s| s.cat == "session" && s.name == "join" && s.pid == 1),
        "join span not on the session process"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.cat == "session" && s.name == "shards" && s.pid == 1),
        "shard fan-out span missing"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.cat == "session" && s.name == "merge" && s.pid == 1),
        "cross-shard merge span missing"
    );
    for pid in [2u32, 3] {
        assert!(
            spans.iter().any(|s| s.cat == "stage" && s.pid == pid),
            "no stage spans for shard process pid {pid}"
        );
        assert!(
            spans.iter().any(|s| s.cat == "chunk" && s.pid == pid),
            "no chunk spans for shard process pid {pid}"
        );
    }

    // The Chrome-tracing export names the shard processes and keys
    // their slices to the right pid.
    let trace = telemetry.export_chrome_trace();
    assert!(
        trace.contains("\"name\":\"shard-0\""),
        "shard-0 process metadata"
    );
    assert!(
        trace.contains("\"name\":\"shard-1\""),
        "shard-1 process metadata"
    );
    assert!(trace.contains("\"pid\":2"), "no slices on shard pid 2");
    assert!(trace.contains("\"pid\":3"), "no slices on shard pid 3");
}
