//! A complete SecAgg+ round over real TCP sockets on localhost, with one
//! client disconnecting mid-round (the "killed client" scenario), and
//! the outcome checked against the expected survivor aggregate.

use std::collections::BTreeMap;
use std::time::Duration;

use dordis_net::coordinator::{run_coordinator, CoordinatorConfig, DropKind};
use dordis_net::runtime::{run_client, ClientOptions, FailAction, FailPoint, FailStage};
use dordis_net::tcp::{TcpAcceptor, TcpChannel};
use dordis_secagg::client::ClientInput;
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::{ClientId, RoundParams, ThreatModel};

const BITS: u32 = 18;
const DIM: usize = 32;
const N: u32 = 7;

fn input_for(id: ClientId) -> ClientInput {
    ClientInput {
        vector: (0..DIM)
            .map(|i| (u64::from(id) * 1009 + i as u64 * 31) & ((1 << BITS) - 1))
            .collect(),
        noise_seeds: vec![[id as u8 + 1; 32]; 3],
    }
}

#[test]
fn tcp_secagg_plus_round_with_mid_round_kill() {
    let params = RoundParams {
        round: 3,
        clients: (0..N).collect(),
        threshold: 4,
        bit_width: BITS,
        vector_len: DIM,
        noise_components: 2,
        threat_model: ThreatModel::SemiHonest,
        graph: MaskingGraph::harary_for(N as usize),
    };

    let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = dordis_net::transport::Acceptor::local_addr(&acceptor);

    let mut handles = Vec::new();
    for id in 0..N {
        let addr = addr.clone();
        // Client 2 "dies" just before sending its masked input.
        let fail = (id == 2).then_some(FailPoint {
            stage: FailStage::MaskedInput,
            action: FailAction::Disconnect,
        });
        handles.push(std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(addr).expect("connect");
            let opts = ClientOptions {
                id,
                rng_seed: 9,
                fail,
                recv_timeout: Duration::from_secs(30),
                silent_linger: Duration::from_secs(1),
            };
            run_client(&mut chan, &opts, move |_| Ok(input_for(id)), |_| None)
        }));
    }

    let report = run_coordinator(
        &mut acceptor,
        &CoordinatorConfig::single(params, Duration::from_secs(15), Duration::from_secs(8)),
    )
    .expect("coordinator");

    for h in handles {
        h.join().expect("thread").expect("client");
    }

    // Client 2 was detected (as a disconnect) and excluded.
    assert_eq!(report.outcome.dropped, vec![2]);
    assert!(report
        .dropouts
        .iter()
        .any(|d| d.client == 2 && d.kind == DropKind::Disconnected));

    // The aggregate is exactly the survivors' modular sum.
    let mut expected = vec![0u64; DIM];
    for &id in &report.outcome.survivors {
        for (e, v) in expected.iter_mut().zip(input_for(id).vector.iter()) {
            *e = (*e + *v) & ((1 << BITS) - 1);
        }
    }
    assert_eq!(report.outcome.sum, expected);

    // Traffic was actually measured on the wire.
    let adv = report.stats.stage("AdvertiseKeys").expect("stage stats");
    assert!(adv.uplink_total > 0 && adv.downlink_total > 0);

    // Noise seeds of every survivor were recovered for removal.
    let survivors: BTreeMap<ClientId, ()> = report
        .outcome
        .survivors
        .iter()
        .map(|&id| (id, ()))
        .collect();
    for (owner, k, _) in &report.outcome.removal_seeds {
        assert!(survivors.contains_key(owner));
        assert!(*k >= 1 && *k <= 2);
    }
}
