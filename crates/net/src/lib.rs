//! Networked execution of Dordis SecAgg / SecAgg+ rounds.
//!
//! The `dordis-secagg` crate provides pure per-party state machines and
//! an in-process driver with *scripted* dropout. This crate is the
//! substrate that runs those same state machines between real processes:
//!
//! - [`codec`]: a length-prefixed binary wire codec for every protocol
//!   message in [`dordis_secagg::messages`], wrapped in a versioned
//!   [`codec::Envelope`] carrying the round id, a stage tag, and a chunk
//!   id — the data plane ships masked inputs as one frame per
//!   `ChunkPlan` chunk, whose payloads are byte-identical slices of the
//!   single-frame packing. The codec is the ground truth for
//!   [`WireSize::wire_bytes`] — the test suite asserts byte-for-byte
//!   agreement.
//! - [`transport`]: the [`transport::Channel`] / [`transport::Acceptor`]
//!   abstraction, with a deterministic channel-backed loopback
//!   implementation for tests and in-process use.
//! - [`tcp`]: the TCP implementation (one connection per client;
//!   blocking I/O with deadlines until registered with the reactor,
//!   non-blocking with partial-read frame reassembly and partial-write
//!   backpressure buffers after).
//! - [`pool`]: the reactor's memory plane — one shared, size-classed,
//!   byte-accounted frame pool per reactor, with per-connection
//!   accounting handles. With a non-zero ingress budget, a connection
//!   that crosses its fair share is read-paused (its `Interest` drops
//!   `readable`) until the coordinator drains below the low-water mark,
//!   so bursts degrade to pacing instead of unbounded buffering.
//! - [`reactor`]: a readiness-driven event loop (direct-syscall epoll
//!   poller, deadline timer wheel, loopback waker) so one coordinator
//!   thread serves hundreds of chunk-streaming clients with `O(events)`
//!   wake-ups instead of the legacy `O(clients × ticks)` poll sweep.
//! - [`compute`]: the coordinator's compute plane — a
//!   [`dordis_compute::Pool`] of worker threads running per-chunk
//!   unmask jobs (mask expansion sliced to each chunk's element offset
//!   via the seekable PRG), with completions published back into the
//!   reactor through the `WakeQueue` under
//!   [`compute::COMPUTE_TOKEN`], so a finished chunk wakes the
//!   coordinator exactly like network readiness.
//! - [`coordinator`]: the server task. It drives
//!   [`dordis_secagg::server::Server`] over any transport with a
//!   per-(stage, chunk) state machine: chunk `c` is aggregated while
//!   chunk `c+1` is still on the wire, per-stage deadlines apply per
//!   chunk, and a peer that goes silent or disconnects (or stops its
//!   chunk stream partway) becomes a *detected* dropout, replacing the
//!   driver's scripted `DropoutSchedule`. Collection is reactor-driven
//!   by default; the legacy poll sweep survives as
//!   [`coordinator::CollectMode::PollSweep`] for comparison benches.
//! - [`runtime`]: the symmetric client task driving
//!   [`dordis_secagg::client::Client`], streaming its masked input one
//!   chunk frame at a time, with optional fail injection (disconnect or
//!   go silent at a chosen stage, or mid-chunk-stream) for tests and
//!   demos.
//!
//! [`WireSize::wire_bytes`]: dordis_secagg::messages::WireSize::wire_bytes

// `deny` rather than `forbid`: the reactor's syscall shim is the one
// place allowed to opt in (no `libc` crate exists in this container, so
// epoll is reached through hand-written `syscall` wrappers).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod compute;
pub mod coordinator;
pub mod faults;
pub mod figure12;
pub mod pool;
pub mod reactor;
pub mod replication;
pub mod runtime;
pub mod session;
pub mod tcp;
pub mod transport;

use dordis_secagg::SecAggError;

/// Errors surfaced by networked round execution.
#[derive(Debug)]
pub enum NetError {
    /// Underlying I/O failure.
    Io(String),
    /// A deadline passed with no frame.
    Timeout,
    /// The peer closed the connection.
    Closed,
    /// A frame failed to decode.
    Codec(String),
    /// The peer speaks a different wire-protocol version. Typed (rather
    /// than a generic codec failure) because chunked frames changed the
    /// wire contract: a v1 peer must be told to upgrade, not debugged.
    Version {
        /// Version byte the peer sent.
        got: u8,
        /// Version this build speaks ([`codec::WIRE_VERSION`]).
        expected: u8,
    },
    /// A frame arrived for a round other than the one the state machine
    /// is executing. Typed (rather than a generic protocol violation)
    /// because in a multi-round session stale frames are *expected* —
    /// a slow claim from round `r` can surface while round `r + 1` is
    /// joining — and must be discarded, never parsed into the current
    /// round's state.
    StaleRound {
        /// Round id the frame carried.
        got: u64,
        /// Round the machine is executing.
        expected: u64,
    },
    /// A peer violated the protocol (wrong stage, bad id, ...).
    Protocol(String),
    /// The protocol itself aborted (below threshold, tampering...).
    SecAgg(SecAggError),
    /// The remote side reported an abort.
    Aborted(String),
    /// The peer actively refused the connection (nothing is listening
    /// yet, or the listener just died). Typed so reconnect loops can
    /// tell "back off and redial" apart from hard I/O failures: during
    /// a coordinator failover thousands of clients hit this at once and
    /// must retry with jittered backoff, not hammer the backup.
    Unavailable,
    /// A fault-injection hook fired ([`faults::FaultPlan`]). Only ever
    /// produced by test/bench harnesses; carries the kill-point label so
    /// the failover driver can assert *which* crash it simulated.
    Injected(String),
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Timeout => write!(f, "deadline exceeded"),
            NetError::Closed => write!(f, "peer closed the connection"),
            NetError::Codec(e) => write!(f, "codec: {e}"),
            NetError::Version { got, expected } => {
                write!(
                    f,
                    "wire version mismatch: peer speaks v{got}, this build v{expected}"
                )
            }
            NetError::StaleRound { got, expected } => {
                write!(
                    f,
                    "stale frame: round {got}, machine is on round {expected}"
                )
            }
            NetError::Protocol(e) => write!(f, "protocol violation: {e}"),
            NetError::SecAgg(e) => write!(f, "secagg: {e}"),
            NetError::Aborted(why) => write!(f, "round aborted: {why}"),
            NetError::Unavailable => write!(f, "peer unavailable (connection refused)"),
            NetError::Injected(point) => write!(f, "injected fault: {point}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl From<SecAggError> for NetError {
    fn from(e: SecAggError) -> Self {
        NetError::SecAgg(e)
    }
}
