//! TCP transport: one connection per client, blocking I/O with
//! deadlines, `u32` length-prefixed frames.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::codec::MAX_FRAME_BYTES;
use crate::transport::{Acceptor, Channel};
use crate::NetError;

/// A framed TCP channel.
///
/// Frames are `u32` little-endian length + payload. Reads are buffered
/// internally so a deadline can expire mid-frame without losing the
/// partial data: the next `recv_deadline` resumes where it stopped.
pub struct TcpChannel {
    stream: TcpStream,
    peer: String,
    /// Partial frame bytes read so far (length prefix included).
    pending: Vec<u8>,
}

impl TcpChannel {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpChannel, NetError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Wraps an accepted stream.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn from_stream(stream: TcpStream) -> Result<TcpChannel, NetError> {
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map_or_else(|_| "unknown".into(), |a| a.to_string());
        Ok(TcpChannel {
            stream,
            peer,
            pending: Vec::new(),
        })
    }

    /// Reads toward a target `pending` length, returning `false` on a
    /// clean timeout.
    fn fill_until(&mut self, target: usize, deadline: Instant) -> Result<bool, NetError> {
        let mut buf = [0u8; 16 * 1024];
        while self.pending.len() < target {
            let now = Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            // Bound each read by the remaining budget so a stalled peer
            // cannot block past the deadline.
            let budget = deadline - now;
            self.stream
                .set_read_timeout(Some(budget.max(Duration::from_millis(1))))?;
            let want = (target - self.pending.len()).min(buf.len());
            match self.stream.read(&mut buf[..want]) {
                Ok(0) => return Err(NetError::Closed),
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(false);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::ConnectionReset
                            | ErrorKind::ConnectionAborted
                            | ErrorKind::BrokenPipe
                            | ErrorKind::UnexpectedEof
                    ) =>
                {
                    return Err(NetError::Closed);
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(true)
    }
}

impl Channel for TcpChannel {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        let mut msg = Vec::with_capacity(4 + frame.len());
        msg.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        msg.extend_from_slice(frame);
        match self.stream.write_all(&msg) {
            Ok(()) => Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::BrokenPipe
                ) =>
            {
                Err(NetError::Closed)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn recv_deadline(&mut self, deadline: Instant) -> Result<Vec<u8>, NetError> {
        // Header first.
        if !self.fill_until(4, deadline)? {
            return Err(NetError::Timeout);
        }
        let len = u32::from_le_bytes(self.pending[..4].try_into().expect("4")) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(NetError::Codec(format!("oversized frame: {len}")));
        }
        if !self.fill_until(4 + len, deadline)? {
            return Err(NetError::Timeout);
        }
        let frame = self.pending[4..4 + len].to_vec();
        self.pending.drain(..4 + len);
        Ok(frame)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// Listening socket yielding [`TcpChannel`]s.
pub struct TcpAcceptor {
    listener: TcpListener,
    local: String,
}

impl TcpAcceptor {
    /// Binds to `addr` (use port 0 for an OS-assigned port, reported by
    /// [`Acceptor::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: impl ToSocketAddrs) -> Result<TcpAcceptor, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener
            .local_addr()
            .map_or_else(|_| "unknown".into(), |a| a.to_string());
        Ok(TcpAcceptor { listener, local })
    }
}

impl Acceptor for TcpAcceptor {
    fn accept(&mut self, deadline: Instant) -> Result<Box<dyn Channel>, NetError> {
        // Poll with a short accept window so the deadline is honored
        // without platform-specific listener timeouts.
        self.listener.set_nonblocking(true)?;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    return Ok(Box::new(TcpChannel::from_stream(stream)?));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Timeout);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn local_addr(&self) -> String {
        self.local.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::deadline_in;

    #[test]
    fn tcp_frames_roundtrip() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let handle = std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(addr).unwrap();
            chan.send(b"from-client").unwrap();
            chan.recv_deadline(deadline_in(Duration::from_secs(2)))
                .unwrap()
        });
        let mut server = acceptor
            .accept(deadline_in(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(
            server
                .recv_deadline(deadline_in(Duration::from_secs(2)))
                .unwrap(),
            b"from-client"
        );
        server.send(b"from-server").unwrap();
        assert_eq!(handle.join().unwrap(), b"from-server");
    }

    #[test]
    fn tcp_timeout_then_recovery() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let handle = std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(80));
            chan.send(b"late").unwrap();
            // Keep the connection alive until the server has read.
            std::thread::sleep(Duration::from_millis(200));
        });
        let mut server = acceptor
            .accept(deadline_in(Duration::from_secs(2)))
            .unwrap();
        let early = server.recv_deadline(deadline_in(Duration::from_millis(10)));
        assert!(matches!(early, Err(NetError::Timeout)));
        let late = server
            .recv_deadline(deadline_in(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(late, b"late");
        handle.join().unwrap();
    }

    #[test]
    fn disconnect_is_detected() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let handle = std::thread::spawn(move || {
            let _chan = TcpChannel::connect(addr).unwrap();
            // Dropped immediately: simulates a killed client.
        });
        let mut server = acceptor
            .accept(deadline_in(Duration::from_secs(2)))
            .unwrap();
        handle.join().unwrap();
        let err = server.recv_deadline(deadline_in(Duration::from_secs(2)));
        assert!(matches!(err, Err(NetError::Closed)), "{err:?}");
    }
}
