//! TCP transport: one connection per client, `u32` length-prefixed
//! frames. Blocking I/O with deadlines until the channel is registered
//! with the [`reactor`](crate::reactor); non-blocking afterwards, with
//! partial-read frame reassembly ([`FrameBuffer`]) and partial-write
//! backpressure buffering ([`WriteBuffer`]).
//!
//! Registered channels participate in the reactor's memory plane
//! ([`crate::pool`]): every buffered ingress byte (stream buffer +
//! decoded frames in flight) and egress byte (write backlog) is charged
//! to the connection's [`ChannelAccount`], frame allocations come from
//! the reactor-shared [`BytePool`](crate::pool::BytePool) reservoir, and
//! with a non-zero ingress budget a connection that crosses its fair
//! share drops its read interest — TCP flow control paces the peer —
//! until the coordinator's recycles drain it below the low-water mark.

use std::collections::VecDeque;
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dordis_telemetry::{Counter, Telemetry};

use crate::codec::MAX_FRAME_BYTES;
use crate::pool::ChannelAccount;
use crate::reactor::{EventedChannel, Interest, PollerHandle, Reactor, Token};
use crate::transport::{Acceptor, Channel};
use crate::NetError;

/// Default bound on how long a blocking [`TcpChannel::send`] may sit in
/// `write(2)` against a peer whose socket buffer is full. Without it,
/// one stalled client could wedge the whole single-threaded coordinator
/// mid-round; with it, the stall surfaces as [`NetError::Timeout`] and
/// the peer becomes a detected dropout.
pub const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Incremental decoder for the `u32`-length-prefixed frame stream: bytes
/// go in in arbitrary splits ([`push`](FrameBuffer::push)), whole frames
/// come out ([`take_frame`](FrameBuffer::take_frame)). A deadline (or
/// `WouldBlock`) can interrupt a frame at any byte without losing the
/// partial data — the next bytes resume exactly where the stream
/// stopped. This is the single reassembly path for both the blocking
/// and the non-blocking (reactor) receive modes, so the proptests that
/// feed it arbitrary split sequences cover both.
///
/// Allocation reuse: consumed bytes advance a read cursor instead of
/// `drain`-shifting the stream buffer per frame, and frames handed back
/// via [`recycle`](FrameBuffer::recycle) return to the reactor-shared
/// [`BytePool`](crate::pool::BytePool) once an account is attached (a
/// small local pool covers the unregistered blocking path) — a
/// coordinator that recycles after decoding stops allocating a fresh
/// `Vec` per chunk frame per client.
///
/// Accounting: with an attached [`ChannelAccount`], `push` charges the
/// arriving bytes, `take_frame` moves a frame's bytes from stream
/// custody to decoded-frame custody (crediting only the 4-byte prefix),
/// and `recycle` credits the frame back — so the account's charge is
/// always exactly `len() + outstanding decoded bytes`, and dropping the
/// buffer settles the ledger.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    /// Raw stream bytes (length prefixes included); everything before
    /// `pos` is already consumed.
    buf: Vec<u8>,
    /// Read cursor into `buf`.
    pos: usize,
    /// Local recycled-frame fallback for unregistered channels.
    local_pool: Vec<Vec<u8>>,
    /// Bytes of decoded frames handed out and not yet recycled.
    outstanding: usize,
    /// Shared-pool account (attached at reactor registration).
    account: Option<ChannelAccount>,
}

/// Local fallback pool bound: enough to cover a drain burst, small
/// enough that a dropped peer's buffers don't linger.
const FRAME_POOL_MAX: usize = 8;

/// Consumed-prefix length at which `push` compacts the stream buffer
/// (below it, the memmove costs more than the memory is worth).
const COMPACT_THRESHOLD: usize = 16 * 1024;

impl FrameBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= COMPACT_THRESHOLD) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
        if let Some(acct) = &self.account {
            acct.charge_ingress(bytes.len());
        }
    }

    /// Stream position target for the next read: enough for the length
    /// prefix, then enough for the full frame.
    #[must_use]
    pub fn needed(&self) -> usize {
        if self.len() < 4 {
            4
        } else {
            let p = self.pos;
            let len = u32::from_le_bytes(self.buf[p..p + 4].try_into().expect("4 bytes")) as usize;
            4 + len
        }
    }

    /// Unconsumed byte count (for diagnostics/tests).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when no unconsumed bytes are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Routes this buffer's accounting and allocation reuse through a
    /// reactor's shared pool: current custody (unconsumed stream bytes +
    /// outstanding decoded frames) is charged to the new account, and
    /// the replaced account's drop credits the pool it came from — so a
    /// channel handed between reactors never double-counts.
    pub fn attach_account(&mut self, account: ChannelAccount) {
        account.charge_ingress(self.len() + self.outstanding);
        self.account = Some(account);
    }

    /// Returns a decoded frame's allocation to the pool and credits its
    /// bytes back to the connection's ingress charge.
    pub fn recycle(&mut self, frame: Vec<u8>) {
        let credit = frame.len().min(self.outstanding);
        self.outstanding -= credit;
        match &self.account {
            Some(acct) => {
                acct.credit_ingress(credit);
                acct.put(frame);
            }
            None => {
                if self.local_pool.len() < FRAME_POOL_MAX && frame.capacity() > 0 {
                    self.local_pool.push(frame);
                }
            }
        }
    }

    /// Pops the next complete frame, or `None` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`NetError::Codec`] when the announced length exceeds
    /// [`MAX_FRAME_BYTES`] — the stream is poisoned at that point and
    /// the connection should be dropped.
    pub fn take_frame(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        if self.len() < 4 {
            return Ok(None);
        }
        let p = self.pos;
        let len = u32::from_le_bytes(self.buf[p..p + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(NetError::Codec(format!("oversized frame: {len}")));
        }
        if self.len() < 4 + len {
            return Ok(None);
        }
        let mut frame = match &self.account {
            Some(acct) => acct.get(len),
            None => {
                let mut local = self.local_pool.pop().unwrap_or_default();
                local.clear();
                local
            }
        };
        frame.extend_from_slice(&self.buf[p + 4..p + 4 + len]);
        self.pos += 4 + len;
        if self.pos == self.buf.len() {
            // Fully consumed: reset in place, keeping the capacity.
            self.buf.clear();
            self.pos = 0;
        }
        // The frame's bytes move from stream custody to decoded-frame
        // custody; only the length prefix leaves the ledger.
        self.outstanding += len;
        if let Some(acct) = &self.account {
            acct.credit_ingress(4);
        }
        Ok(Some(frame))
    }
}

/// One queued egress segment: a refcounted, already length-prefixed wire
/// message and the drain position within it. Broadcast frames are
/// encoded once and the same `Arc` is queued on every channel.
#[derive(Debug)]
struct Segment {
    data: Arc<[u8]>,
    pos: usize,
}

/// Backpressure buffer for the non-blocking write path: a queue of
/// refcounted segments drained with vectored writes. Frames queued via
/// [`queue_frame`](WriteBuffer::queue_frame) are copied once (prefix +
/// payload into one allocation); broadcast frames arrive pre-encoded
/// via [`queue_shared`](WriteBuffer::queue_shared) and are shared across
/// all channels — zero per-peer copies. Partial writes never tear a
/// frame: the front segment's position is the stream cursor.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    segs: VecDeque<Segment>,
    /// Total unsent bytes across all segments.
    len: usize,
    /// Shared-pool account (attached at reactor registration).
    account: Option<ChannelAccount>,
}

/// Most segments gathered into one vectored write.
const MAX_WRITEV_SEGMENTS: usize = 16;

impl WriteBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> WriteBuffer {
        WriteBuffer::default()
    }

    /// Queues one frame (length prefix + payload, copied into one owned
    /// segment).
    pub fn queue_frame(&mut self, frame: &[u8]) {
        let mut msg = Vec::with_capacity(4 + frame.len());
        msg.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        msg.extend_from_slice(frame);
        self.queue_shared(&msg.into());
    }

    /// Queues an already-encoded wire message (length prefix included)
    /// by reference count — the broadcast path queues one `Arc` on N
    /// channels instead of copying the frame N times.
    pub fn queue_shared(&mut self, msg: &Arc<[u8]>) {
        self.len += msg.len();
        if let Some(acct) = &self.account {
            acct.charge_egress(msg.len());
        }
        self.segs.push_back(Segment {
            data: Arc::clone(msg),
            pos: 0,
        });
    }

    /// Bytes still waiting to drain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when everything has drained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Routes this buffer's egress accounting through a reactor's
    /// shared pool (see [`FrameBuffer::attach_account`]).
    pub fn attach_account(&mut self, account: ChannelAccount) {
        account.charge_egress(self.len);
        self.account = Some(account);
    }

    /// Advances the queue past `n` written bytes and credits them back.
    fn consume(&mut self, mut n: usize) {
        self.len -= n;
        if let Some(acct) = &self.account {
            acct.credit_egress(n);
        }
        while n > 0 {
            let front = self.segs.front_mut().expect("consumed past queue");
            let remaining = front.data.len() - front.pos;
            if n >= remaining {
                n -= remaining;
                self.segs.pop_front();
            } else {
                front.pos += n;
                n = 0;
            }
        }
    }

    /// Writes as much as `w` accepts, gathering up to
    /// [`MAX_WRITEV_SEGMENTS`] segments per vectored write. `Ok(true)`
    /// means drained; `Ok(false)` means `w` signalled `WouldBlock` (or
    /// accepted only part) and the remainder waits for the next
    /// readiness event.
    ///
    /// # Errors
    ///
    /// Propagates non-`WouldBlock` I/O failures (`Interrupted` is
    /// retried, a zero-byte write is reported as `WriteZero`).
    pub fn write_to(&mut self, w: &mut impl Write) -> std::io::Result<bool> {
        while !self.segs.is_empty() {
            let slices: Vec<IoSlice<'_>> = self
                .segs
                .iter()
                .take(MAX_WRITEV_SEGMENTS)
                .map(|seg| IoSlice::new(&seg.data[seg.pos..]))
                .collect();
            let written = match w.write_vectored(&slices) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            drop(slices);
            self.consume(written);
        }
        Ok(true)
    }
}

/// Registration state of an evented [`TcpChannel`].
#[derive(Clone, Copy, Debug)]
struct Registration {
    handle: PollerHandle,
    token: Token,
    /// Interest currently installed in the poller (write interest is
    /// flipped on outbox empty↔backlogged transitions, read interest on
    /// backpressure pause↔resume).
    interest: Interest,
}

/// A framed TCP channel.
///
/// Frames are `u32` little-endian length + payload. Reads are buffered
/// internally so a deadline can expire mid-frame without losing the
/// partial data: the next `recv_deadline` (or `try_recv`) resumes where
/// it stopped.
pub struct TcpChannel {
    stream: TcpStream,
    peer: String,
    inbox: FrameBuffer,
    outbox: WriteBuffer,
    registration: Option<Registration>,
    /// Peer hung up: serve remaining buffered frames, then `Closed`.
    eof: bool,
    write_timeout: Duration,
    /// Shared-pool account, opened at registration.
    account: Option<ChannelAccount>,
    /// Read interest dropped by backpressure; re-armed by recycles.
    paused: bool,
    /// Administrative ingress hold (admission window): keeps the pause
    /// latched until explicitly released, regardless of the account.
    held: bool,
}

impl TcpChannel {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`NetError::Unavailable`] when the peer actively refuses (nothing
    /// listening — the typed signal reconnect loops back off on);
    /// propagates other connection failures as [`NetError::Io`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpChannel, NetError> {
        let stream = TcpStream::connect(addr).map_err(|e| {
            if e.kind() == std::io::ErrorKind::ConnectionRefused {
                NetError::Unavailable
            } else {
                NetError::from(e)
            }
        })?;
        Self::from_stream(stream)
    }

    /// Wraps an accepted stream.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn from_stream(stream: TcpStream) -> Result<TcpChannel, NetError> {
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map_or_else(|_| "unknown".into(), |a| a.to_string());
        Ok(TcpChannel {
            stream,
            peer,
            inbox: FrameBuffer::new(),
            outbox: WriteBuffer::new(),
            registration: None,
            eof: false,
            write_timeout: DEFAULT_WRITE_TIMEOUT,
            account: None,
            paused: false,
            held: false,
        })
    }

    /// Overrides the blocking-path write timeout (see
    /// [`DEFAULT_WRITE_TIMEOUT`]).
    pub fn set_write_timeout(&mut self, timeout: Duration) {
        self.write_timeout = timeout;
    }

    /// True while backpressure has this connection's read interest
    /// dropped (diagnostics/tests).
    #[must_use]
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Reads toward a target `inbox` length, returning `false` on a
    /// clean timeout. Blocking path only.
    fn fill_until(&mut self, target: usize, deadline: Instant) -> Result<bool, NetError> {
        let mut buf = [0u8; 16 * 1024];
        while self.inbox.len() < target {
            let now = Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            // Bound each read by the remaining budget so a stalled peer
            // cannot block past the deadline.
            let budget = deadline - now;
            self.stream
                .set_read_timeout(Some(budget.max(Duration::from_millis(1))))?;
            let want = (target - self.inbox.len()).min(buf.len());
            match self.stream.read(&mut buf[..want]) {
                Ok(0) => return Err(NetError::Closed),
                Ok(n) => self.inbox.push(&buf[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(false);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_disconnect(&e) => return Err(NetError::Closed),
                Err(e) => return Err(e.into()),
            }
        }
        Ok(true)
    }

    /// Installs `interest` in the poller if it changed.
    fn set_interest(&mut self, interest: Interest) -> Result<(), NetError> {
        if let Some(reg) = &mut self.registration {
            if reg.interest != interest {
                reg.handle
                    .reregister(self.stream.as_raw_fd(), reg.token, interest)?;
                reg.interest = interest;
            }
        }
        Ok(())
    }

    /// Re-derives and installs the interest implied by the current
    /// pause state and outbox backlog.
    fn sync_interest(&mut self) -> Result<(), NetError> {
        self.set_interest(Interest {
            readable: !self.paused,
            writable: !self.outbox.is_empty(),
        })
    }

    /// Drops read interest if the connection's ingress charge crossed
    /// its budget thresholds (see [`ChannelAccount::should_pause`]).
    fn maybe_pause(&mut self) -> Result<(), NetError> {
        if self.paused || self.registration.is_none() {
            return Ok(());
        }
        if let Some(acct) = &self.account {
            if acct.should_pause() {
                acct.set_paused(true);
                self.paused = true;
                self.sync_interest()?;
            }
        }
        Ok(())
    }

    /// Re-arms read interest once a paused connection has drained below
    /// the low-water mark. An administrative hold keeps the pause
    /// latched no matter what the account says.
    fn maybe_resume(&mut self) -> Result<(), NetError> {
        if !self.paused || self.held {
            return Ok(());
        }
        if let Some(acct) = &self.account {
            if acct.should_resume() {
                acct.set_paused(false);
                self.paused = false;
                self.sync_interest()?;
            }
        }
        Ok(())
    }

    /// Flushes the outbox and keeps write interest in sync with whether
    /// a backlog remains.
    fn flush_outbox(&mut self) -> Result<bool, NetError> {
        let drained = match self.outbox.write_to(&mut self.stream) {
            Ok(drained) => drained,
            Err(e) if is_disconnect(&e) || e.kind() == ErrorKind::WriteZero => {
                return Err(NetError::Closed)
            }
            Err(e) => return Err(e.into()),
        };
        self.sync_interest()?;
        Ok(drained)
    }
}

/// Error kinds that mean "the peer is gone", not "I/O is broken".
fn is_disconnect(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof
            | ErrorKind::NotConnected
    )
}

impl Channel for TcpChannel {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        if self.registration.is_some() {
            // Evented mode: enqueue and flush opportunistically; the
            // event loop drains any backlog under write readiness.
            self.outbox.queue_frame(frame);
            self.flush_outbox()?;
            return Ok(());
        }
        // Blocking mode, but never unbounded: a peer that stops reading
        // fills its socket buffer and would otherwise park the
        // coordinator in write(2) forever. The deadline is *overall*
        // (each write(2) is bounded by the remaining budget, like
        // `fill_until`), so a peer draining one byte per poll cannot
        // extend it; expiry surfaces as NetError::Timeout → a detected
        // dropout. (A timeout can tear a frame mid-write, so the
        // connection must be dropped after.)
        let deadline = Instant::now() + self.write_timeout;
        let mut msg = Vec::with_capacity(4 + frame.len());
        msg.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        msg.extend_from_slice(frame);
        let mut written = 0;
        while written < msg.len() {
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout);
            }
            let budget = deadline - now;
            self.stream
                .set_write_timeout(Some(budget.max(Duration::from_millis(1))))?;
            match self.stream.write(&msg[written..]) {
                Ok(0) => return Err(NetError::Closed),
                Ok(n) => written += n,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Err(NetError::Timeout);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_disconnect(&e) => return Err(NetError::Closed),
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    fn send_wire_shared(&mut self, msg: &Arc<[u8]>) -> Result<(), NetError> {
        if self.registration.is_some() {
            // Zero-copy broadcast: the shared encoding is queued by
            // refcount, not copied into a per-connection buffer.
            self.outbox.queue_shared(msg);
            self.flush_outbox()?;
            return Ok(());
        }
        self.send(&msg[4..])
    }

    fn recv_deadline(&mut self, deadline: Instant) -> Result<Vec<u8>, NetError> {
        loop {
            if let Some(frame) = self.inbox.take_frame()? {
                return Ok(frame);
            }
            if self.eof {
                return Err(NetError::Closed);
            }
            if !self.fill_until(self.inbox.needed(), deadline)? {
                return Err(NetError::Timeout);
            }
        }
    }

    fn recycle_frame(&mut self, frame: Vec<u8>) {
        self.inbox.recycle(frame);
        // Recycles are the credit stream that re-arms a paused
        // connection; a reregister failure here means the fd is broken
        // and the next poll/IO on it will surface the real error.
        let _ = self.maybe_resume();
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

impl EventedChannel for TcpChannel {
    fn register(&mut self, reactor: &mut Reactor, token: Token) -> Result<(), NetError> {
        let pool = reactor.pool();
        let fresh = match &self.account {
            Some(acct) => !acct.pool().same_as(&pool),
            None => true,
        };
        if fresh {
            // First registration, or handed to a different reactor:
            // open an account on the new pool and charge the bytes this
            // channel is currently holding. The replaced account clones
            // drop with the old buffers' handles, crediting the pool
            // they came from — no double counting, no leak.
            let acct = pool.account();
            if self.paused {
                self.paused = false;
            }
            // A leaked hold must not survive a reactor handoff — the
            // replaced account settles the old pool's paused gauge.
            self.held = false;
            self.inbox.attach_account(acct.clone());
            self.outbox.attach_account(acct.clone());
            self.account = Some(acct);
        }
        self.stream.set_nonblocking(true)?;
        let fd = self.stream.as_raw_fd();
        let interest = Interest {
            readable: !self.paused,
            writable: !self.outbox.is_empty(),
        };
        match &mut self.registration {
            Some(reg) => {
                let handle = reg.handle;
                handle.reregister(fd, token, interest)?;
                reg.token = token;
                reg.interest = interest;
            }
            None => {
                let handle = reactor.handle();
                handle.register(fd, token, interest)?;
                self.registration = Some(Registration {
                    handle,
                    token,
                    interest,
                });
            }
        }
        Ok(())
    }

    fn deregister(&mut self) -> Result<(), NetError> {
        if let Some(reg) = self.registration.take() {
            reg.handle.deregister(self.stream.as_raw_fd())?;
        }
        // The stream stays non-blocking: a deregistered channel is in
        // transit between reactors, and the next `register` call binds
        // it fresh on the destination's poller. The account stays too —
        // re-registration on a different reactor rebinds it.
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        // Drain the kernel buffer first so level-triggered epoll goes
        // quiet once everything available has been reassembled. A
        // paused connection only finishes the frame in flight (so the
        // stream parks at a frame boundary and every charged byte can
        // be recycled back), then leaves the rest to TCP flow control.
        let mut buf = [0u8; 16 * 1024];
        while !self.eof {
            let want = if self.paused {
                let buffered = self.inbox.len();
                if buffered == 0 || buffered >= self.inbox.needed() {
                    break;
                }
                (self.inbox.needed() - buffered).min(buf.len())
            } else {
                buf.len()
            };
            match self.stream.read(&mut buf[..want]) {
                Ok(0) => self.eof = true,
                Ok(n) => {
                    self.inbox.push(&buf[..n]);
                    self.maybe_pause()?;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_disconnect(&e) => self.eof = true,
                Err(e) => return Err(e.into()),
            }
        }
        if let Some(frame) = self.inbox.take_frame()? {
            return Ok(Some(frame));
        }
        if self.eof {
            return Err(NetError::Closed);
        }
        Ok(None)
    }

    fn try_flush(&mut self) -> Result<bool, NetError> {
        self.flush_outbox()
    }

    fn wants_write(&self) -> bool {
        !self.outbox.is_empty()
    }

    fn set_ingress_hold(&mut self, hold: bool) -> Result<(), NetError> {
        if self.held == hold {
            return Ok(());
        }
        self.held = hold;
        if hold {
            // Latch the pause through the same plumbing backpressure
            // uses, so the pool's paused gauge stays truthful.
            if !self.paused {
                if let Some(acct) = &self.account {
                    acct.set_paused(true);
                }
                self.paused = true;
                self.sync_interest()?;
            }
        } else if self.paused {
            // Release re-arms immediately unless the byte account still
            // has this connection over its own low-water mark.
            let over_water = self
                .account
                .as_ref()
                .is_some_and(|acct| !acct.should_resume());
            if !over_water {
                if let Some(acct) = &self.account {
                    acct.set_paused(false);
                }
                self.paused = false;
                self.sync_interest()?;
            }
        }
        Ok(())
    }
}

/// Listening socket yielding [`TcpChannel`]s.
pub struct TcpAcceptor {
    listener: TcpListener,
    local: String,
    /// Connections accepted (no-op counter until telemetry attaches).
    accepts: Counter,
    /// Accept attempts that failed with a transient error.
    rejections: Counter,
}

impl TcpAcceptor {
    /// Binds to `addr` (use port 0 for an OS-assigned port, reported by
    /// [`Acceptor::local_addr`]). The listener is non-blocking from the
    /// start — `accept` polls it instead of re-arming the socket option
    /// on every iteration.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: impl ToSocketAddrs) -> Result<TcpAcceptor, NetError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener
            .local_addr()
            .map_or_else(|_| "unknown".into(), |a| a.to_string());
        Ok(TcpAcceptor {
            listener,
            local,
            accepts: Counter::default(),
            rejections: Counter::default(),
        })
    }
}

impl Acceptor for TcpAcceptor {
    fn accept(&mut self, deadline: Instant) -> Result<Box<dyn EventedChannel>, NetError> {
        // Poll with a short accept window so the deadline is honored
        // without platform-specific listener timeouts.
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    self.accepts.inc();
                    return Ok(Box::new(TcpChannel::from_stream(stream)?));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Timeout);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    self.rejections.inc();
                    return Err(e.into());
                }
            }
        }
    }

    fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.accepts = telemetry.counter("dordis_accepts_total", &[]);
        self.rejections = telemetry.counter("dordis_accept_rejections_total", &[]);
    }

    fn local_addr(&self) -> String {
        self.local.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::deadline_in;

    #[test]
    fn frame_buffer_reuses_recycled_allocations() {
        let mut buf = FrameBuffer::new();
        // Recycle a buffer with a recognizable (over-sized) capacity.
        buf.recycle(Vec::with_capacity(4096));
        let mut stream = Vec::new();
        for payload in [&b"abc"[..], b"defgh"] {
            stream.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            stream.extend_from_slice(payload);
        }
        buf.push(&stream);
        let first = buf.take_frame().unwrap().expect("first frame");
        assert_eq!(first, b"abc");
        assert!(
            first.capacity() >= 4096,
            "pooled allocation not reused (capacity {})",
            first.capacity()
        );
        // Recycle it again: the next frame rides the same allocation.
        buf.recycle(first);
        let second = buf.take_frame().unwrap().expect("second frame");
        assert_eq!(second, b"defgh");
        assert!(second.capacity() >= 4096);
        assert!(buf.is_empty(), "stream fully consumed");
        assert!(buf.take_frame().unwrap().is_none());
    }

    #[test]
    fn frame_buffer_cursor_survives_interleaved_push_and_take() {
        // Frames are consumed via the read cursor while later bytes
        // keep arriving; the reassembly must stay byte-exact across
        // compactions.
        let frames: Vec<Vec<u8>> = (0..50u8)
            .map(|i| vec![i; 1 + usize::from(i) * 7 % 40])
            .collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&(f.len() as u32).to_le_bytes());
            stream.extend_from_slice(f);
        }
        let mut buf = FrameBuffer::new();
        let mut got = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let n = (pos * 13 % 9 + 1).min(stream.len() - pos);
            buf.push(&stream[pos..pos + n]);
            pos += n;
            while let Some(frame) = buf.take_frame().unwrap() {
                got.push(frame.clone());
                buf.recycle(frame); // exercise reuse mid-stream
            }
        }
        assert_eq!(got, frames);
        assert!(buf.is_empty());
    }

    #[test]
    fn frame_buffer_accounts_custody_through_shared_pool() {
        use crate::pool::BytePool;

        let pool = BytePool::new(0);
        let mut buf = FrameBuffer::new();
        buf.attach_account(pool.account());
        let payload = vec![7u8; 100];
        let mut stream = (payload.len() as u32).to_le_bytes().to_vec();
        stream.extend_from_slice(&payload);
        buf.push(&stream);
        assert_eq!(pool.live_ingress(), 104, "stream bytes charged");
        let frame = buf.take_frame().unwrap().expect("frame");
        assert_eq!(
            pool.live_ingress(),
            100,
            "prefix credited, frame still in custody"
        );
        buf.recycle(frame);
        assert_eq!(pool.live_ingress(), 0, "recycle settles the frame");
        assert!(pool.pooled_bytes() > 0, "allocation joined the reservoir");
    }

    #[test]
    fn write_buffer_shares_broadcast_segments() {
        // One pre-encoded wire message queued on two buffers: both
        // drain the identical stream, and the bytes live in one shared
        // allocation (Arc refcount 3: ours + 2 queues).
        let frame = b"broadcast-payload".to_vec();
        let mut msg = (frame.len() as u32).to_le_bytes().to_vec();
        msg.extend_from_slice(&frame);
        let wire: Arc<[u8]> = msg.clone().into();
        let mut a = WriteBuffer::new();
        let mut b = WriteBuffer::new();
        a.queue_shared(&wire);
        b.queue_shared(&wire);
        assert_eq!(Arc::strong_count(&wire), 3, "queued by refcount");
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        assert!(a.write_to(&mut out_a).unwrap());
        assert!(b.write_to(&mut out_b).unwrap());
        assert_eq!(out_a, msg);
        assert_eq!(out_b, msg);
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn tcp_frames_roundtrip() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let handle = std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(addr).unwrap();
            chan.send(b"from-client").unwrap();
            chan.recv_deadline(deadline_in(Duration::from_secs(2)))
                .unwrap()
        });
        let mut server = acceptor
            .accept(deadline_in(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(
            server
                .recv_deadline(deadline_in(Duration::from_secs(2)))
                .unwrap(),
            b"from-client"
        );
        server.send(b"from-server").unwrap();
        assert_eq!(handle.join().unwrap(), b"from-server");
    }

    #[test]
    fn tcp_timeout_then_recovery() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let handle = std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(80));
            chan.send(b"late").unwrap();
            // Keep the connection alive until the server has read.
            std::thread::sleep(Duration::from_millis(200));
        });
        let mut server = acceptor
            .accept(deadline_in(Duration::from_secs(2)))
            .unwrap();
        let early = server.recv_deadline(deadline_in(Duration::from_millis(10)));
        assert!(matches!(early, Err(NetError::Timeout)));
        let late = server
            .recv_deadline(deadline_in(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(late, b"late");
        handle.join().unwrap();
    }

    #[test]
    fn disconnect_is_detected() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let handle = std::thread::spawn(move || {
            let _chan = TcpChannel::connect(addr).unwrap();
            // Dropped immediately: simulates a killed client.
        });
        let mut server = acceptor
            .accept(deadline_in(Duration::from_secs(2)))
            .unwrap();
        handle.join().unwrap();
        let err = server.recv_deadline(deadline_in(Duration::from_secs(2)));
        assert!(matches!(err, Err(NetError::Closed)), "{err:?}");
    }

    #[test]
    fn stalled_reader_surfaces_send_timeout() {
        // The peer never reads: both socket buffers fill and a blocking
        // send must surface NetError::Timeout (a detected dropout)
        // instead of wedging the coordinator forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let chan = TcpChannel::connect(addr).unwrap();
            // Hold the connection open without reading.
            std::thread::sleep(Duration::from_secs(3));
            drop(chan);
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpChannel::from_stream(stream).unwrap();
        server.set_write_timeout(Duration::from_millis(200));
        let big = vec![0u8; 32 << 20];
        let start = Instant::now();
        let err = server.send(&big);
        assert!(matches!(err, Err(NetError::Timeout)), "{err:?}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "send blocked for {:?}",
            start.elapsed()
        );
        handle.join().unwrap();
    }

    #[test]
    fn slow_draining_reader_hits_overall_send_deadline() {
        // The peer drains a trickle — every read makes *some* progress,
        // so a per-write timeout would reset forever. The deadline is
        // overall: send must give up within ~write_timeout regardless.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(addr).unwrap();
            let mut byte = [0u8; 1];
            for _ in 0..20 {
                std::thread::sleep(Duration::from_millis(100));
                if chan.stream.read(&mut byte).is_err() {
                    break;
                }
            }
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpChannel::from_stream(stream).unwrap();
        server.set_write_timeout(Duration::from_millis(400));
        let big = vec![0u8; 32 << 20];
        let start = Instant::now();
        let err = server.send(&big);
        assert!(matches!(err, Err(NetError::Timeout)), "{err:?}");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "overall deadline did not hold: {:?}",
            start.elapsed()
        );
        drop(server);
        handle.join().unwrap();
    }

    #[test]
    fn evented_channel_reassembles_and_flushes() {
        use crate::reactor::{Reactor, Token};

        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let client = std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(addr).unwrap();
            // Dribble one frame byte by byte to force reassembly.
            let frame = b"dribbled".to_vec();
            let mut msg = (frame.len() as u32).to_le_bytes().to_vec();
            msg.extend_from_slice(&frame);
            for b in msg {
                use std::io::Write as _;
                chan.stream.write_all(&[b]).unwrap();
                chan.stream.flush().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
            chan.recv_deadline(deadline_in(Duration::from_secs(5)))
                .unwrap()
        });

        let mut reactor = Reactor::new(Duration::from_millis(5)).unwrap();
        let mut server = acceptor
            .accept(deadline_in(Duration::from_secs(2)))
            .unwrap();
        server.register(&mut reactor, Token(1)).unwrap();

        let (mut events, mut expired) = (Vec::new(), Vec::new());
        let frame = loop {
            reactor
                .poll(&mut events, &mut expired, Duration::from_secs(1))
                .unwrap();
            let mut got = None;
            for ev in &events {
                assert_eq!(ev.token, Token(1));
                if ev.readable {
                    if let Some(f) = server.try_recv().unwrap() {
                        got = Some(f);
                    }
                }
            }
            if let Some(f) = got {
                break f;
            }
        };
        assert_eq!(frame, b"dribbled");

        // Evented send queues + flushes; small frames drain immediately.
        server.send(b"echo").unwrap();
        while server.wants_write() {
            reactor
                .poll(&mut events, &mut expired, Duration::from_millis(50))
                .unwrap();
            server.try_flush().unwrap();
        }
        assert_eq!(client.join().unwrap(), b"echo");
    }

    #[test]
    fn backpressure_pauses_and_rearms_without_losing_frames() {
        use crate::reactor::{Reactor, Token};

        const FRAMES: usize = 64;
        const LEN: usize = 8 * 1024;
        // Budget well below the burst (64 × 8 KiB = 512 KiB), above the
        // fair-share floor so one connection's share is the budget.
        const BUDGET: u64 = 96 * 1024;

        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let client = std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(addr).unwrap();
            // Backpressure stalls the kernel send path on purpose; the
            // write deadline just has to outlive the test.
            chan.set_write_timeout(Duration::from_secs(30));
            for i in 0..FRAMES {
                let frame = vec![i as u8; LEN];
                chan.send(&frame).unwrap();
            }
            // Hold the connection open until the server confirms.
            chan.recv_deadline(deadline_in(Duration::from_secs(30)))
                .unwrap()
        });

        let mut reactor = Reactor::new(Duration::from_millis(5)).unwrap();
        reactor.set_ingress_budget(BUDGET);
        let pool = reactor.pool();
        let mut server = acceptor
            .accept(deadline_in(Duration::from_secs(5)))
            .unwrap();
        server.register(&mut reactor, Token(1)).unwrap();
        // Phase 1: drain *without recycling* until backpressure trips
        // (the pool's paused gauge is the public view of the channel's
        // pause state).
        let (mut events, mut expired) = (Vec::new(), Vec::new());
        let mut held: Vec<Vec<u8>> = Vec::new();
        let start = Instant::now();
        while pool.paused_connections() == 0 {
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "backpressure never paused the connection \
                 ({} frames drained, {} live bytes)",
                held.len(),
                pool.live_ingress()
            );
            reactor
                .poll(&mut events, &mut expired, Duration::from_millis(50))
                .unwrap();
            for ev in &events {
                if ev.readable {
                    while let Some(f) = server.try_recv().unwrap() {
                        held.push(f);
                    }
                }
            }
        }
        assert!(
            held.len() < FRAMES,
            "paused only after the whole burst was buffered"
        );
        assert!(pool.live_ingress() > BUDGET / 2);

        // Phase 2: a paused connection produces no further events even
        // though the client is still pushing — the reactor's polls stay
        // O(events), it does not spin on suppressed readiness.
        for _ in 0..3 {
            reactor
                .poll(&mut events, &mut expired, Duration::from_millis(30))
                .unwrap();
            assert!(
                events.is_empty(),
                "paused connection leaked events: {events:?}"
            );
        }

        // Phase 3: verify + recycle everything held so far — the credit
        // stream must re-arm read interest.
        let verified = held.len();
        for (i, frame) in held.drain(..).enumerate() {
            assert_eq!(frame.len(), LEN);
            assert!(
                frame.iter().all(|&b| b == i as u8),
                "frame {i} corrupted across the pause"
            );
            server.recycle_frame(frame);
        }
        assert_eq!(
            pool.paused_connections(),
            0,
            "recycling everything did not re-arm the connection"
        );

        // Phase 4: the rest of the burst arrives, in order — nothing
        // lost or duplicated across the pause/resume cycle. Recycle as
        // we go so the connection stays under budget.
        let mut next = verified;
        let deadline = Instant::now() + Duration::from_secs(20);
        while next < FRAMES {
            assert!(
                Instant::now() < deadline,
                "burst stalled after resume at frame {next}"
            );
            reactor
                .poll(&mut events, &mut expired, Duration::from_millis(50))
                .unwrap();
            for ev in &events {
                if ev.readable {
                    while let Some(frame) = server.try_recv().unwrap() {
                        assert_eq!(frame.len(), LEN);
                        assert!(
                            frame.iter().all(|&b| b == next as u8),
                            "frame {next} lost or reordered across the pause"
                        );
                        next += 1;
                        server.recycle_frame(frame);
                    }
                }
            }
        }

        // Release the client and make sure the ledger settled.
        server.send(b"done").unwrap();
        assert_eq!(client.join().unwrap(), b"done");
        drop(server);
        assert_eq!(pool.live_ingress(), 0, "ingress ledger leaked");
        assert_eq!(pool.paused_connections(), 0);

        // Backpressure must not degrade the reactor to spinning: the
        // poll count stays in the order of delivered events.
        let stats = reactor.stats;
        assert!(
            stats.polls <= stats.events + stats.timer_fires + 64,
            "polls {} not O(events {} + timer fires {})",
            stats.polls,
            stats.events,
            stats.timer_fires
        );
    }
}
