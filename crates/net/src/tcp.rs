//! TCP transport: one connection per client, `u32` length-prefixed
//! frames. Blocking I/O with deadlines until the channel is registered
//! with the [`reactor`](crate::reactor); non-blocking afterwards, with
//! partial-read frame reassembly ([`FrameBuffer`]) and partial-write
//! backpressure buffering ([`WriteBuffer`]).

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

use dordis_telemetry::Counter;

use crate::codec::MAX_FRAME_BYTES;
use crate::reactor::{EventedChannel, Interest, PollerHandle, Reactor, Token};
use crate::transport::{Acceptor, Channel};
use crate::NetError;

/// Default bound on how long a blocking [`TcpChannel::send`] may sit in
/// `write(2)` against a peer whose socket buffer is full. Without it,
/// one stalled client could wedge the whole single-threaded coordinator
/// mid-round; with it, the stall surfaces as [`NetError::Timeout`] and
/// the peer becomes a detected dropout.
pub const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Incremental decoder for the `u32`-length-prefixed frame stream: bytes
/// go in in arbitrary splits ([`push`](FrameBuffer::push)), whole frames
/// come out ([`take_frame`](FrameBuffer::take_frame)). A deadline (or
/// `WouldBlock`) can interrupt a frame at any byte without losing the
/// partial data — the next bytes resume exactly where the stream
/// stopped. This is the single reassembly path for both the blocking
/// and the non-blocking (reactor) receive modes, so the proptests that
/// feed it arbitrary split sequences cover both.
///
/// Allocation reuse: consumed bytes advance a read cursor instead of
/// `drain`-shifting the stream buffer per frame, and frames handed back
/// via [`recycle`](FrameBuffer::recycle) join a small pool that
/// [`take_frame`](FrameBuffer::take_frame) draws from — a coordinator
/// that recycles after decoding stops allocating a fresh `Vec` per
/// chunk frame per client.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    /// Raw stream bytes (length prefixes included); everything before
    /// `pos` is already consumed.
    buf: Vec<u8>,
    /// Read cursor into `buf`.
    pos: usize,
    /// Recycled frame allocations, cleared and ready for reuse.
    pool: Vec<Vec<u8>>,
    /// Frames served from the reuse pool (default-constructed = no-op).
    recycled: Counter,
    /// Frames that needed a fresh allocation.
    allocated: Counter,
}

/// Recycled-frame pool bound: enough to cover a drain burst, small
/// enough that a dropped peer's buffers don't linger.
const FRAME_POOL_MAX: usize = 8;

/// Consumed-prefix length at which `push` compacts the stream buffer
/// (below it, the memmove costs more than the memory is worth).
const COMPACT_THRESHOLD: usize = 16 * 1024;

impl FrameBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= COMPACT_THRESHOLD) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Stream position target for the next read: enough for the length
    /// prefix, then enough for the full frame.
    #[must_use]
    pub fn needed(&self) -> usize {
        if self.len() < 4 {
            4
        } else {
            let p = self.pos;
            let len = u32::from_le_bytes(self.buf[p..p + 4].try_into().expect("4 bytes")) as usize;
            4 + len
        }
    }

    /// Unconsumed byte count (for diagnostics/tests).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when no unconsumed bytes are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Points the buffer's pool-hit/fresh-allocation accounting at
    /// registry counters (the channel wires this up when it joins a
    /// telemetry-carrying reactor).
    pub fn set_counters(&mut self, recycled: Counter, allocated: Counter) {
        self.recycled = recycled;
        self.allocated = allocated;
    }

    /// Returns a decoded frame's allocation to the reuse pool.
    pub fn recycle(&mut self, frame: Vec<u8>) {
        if self.pool.len() < FRAME_POOL_MAX && frame.capacity() > 0 {
            self.pool.push(frame);
        }
    }

    /// Pops the next complete frame, or `None` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`NetError::Codec`] when the announced length exceeds
    /// [`MAX_FRAME_BYTES`] — the stream is poisoned at that point and
    /// the connection should be dropped.
    pub fn take_frame(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        if self.len() < 4 {
            return Ok(None);
        }
        let p = self.pos;
        let len = u32::from_le_bytes(self.buf[p..p + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(NetError::Codec(format!("oversized frame: {len}")));
        }
        if self.len() < 4 + len {
            return Ok(None);
        }
        let mut frame = match self.pool.pop() {
            Some(reused) => {
                self.recycled.inc();
                reused
            }
            None => {
                self.allocated.inc();
                Vec::new()
            }
        };
        frame.clear();
        frame.extend_from_slice(&self.buf[p + 4..p + 4 + len]);
        self.pos += 4 + len;
        if self.pos == self.buf.len() {
            // Fully consumed: reset in place, keeping the capacity.
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(frame))
    }
}

/// Backpressure buffer for the non-blocking write path: frames are
/// queued with their length prefix, and [`write_to`](WriteBuffer::write_to)
/// drains as many bytes as the socket accepts, keeping the rest for the
/// next write-readiness event. Partial writes therefore never tear a
/// frame — the stream position is the buffer's front.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    queue: VecDeque<u8>,
}

impl WriteBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> WriteBuffer {
        WriteBuffer::default()
    }

    /// Queues one frame (length prefix + payload).
    pub fn queue_frame(&mut self, frame: &[u8]) {
        self.queue.extend((frame.len() as u32).to_le_bytes());
        self.queue.extend(frame.iter().copied());
    }

    /// Bytes still waiting to drain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when everything has drained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Writes as much as `w` accepts. `Ok(true)` means drained;
    /// `Ok(false)` means `w` signalled `WouldBlock` (or accepted only
    /// part) and the remainder waits for the next readiness event.
    ///
    /// # Errors
    ///
    /// Propagates non-`WouldBlock` I/O failures (`Interrupted` is
    /// retried, a zero-byte write is reported as `WriteZero`).
    pub fn write_to(&mut self, w: &mut impl Write) -> std::io::Result<bool> {
        while !self.queue.is_empty() {
            let (front, _) = self.queue.as_slices();
            match w.write(front) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.queue.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

/// Registration state of an evented [`TcpChannel`].
#[derive(Clone, Copy, Debug)]
struct Registration {
    handle: PollerHandle,
    token: Token,
    /// Interest currently installed in the poller (write interest is
    /// flipped on outbox empty↔backlogged transitions).
    interest: Interest,
}

/// A framed TCP channel.
///
/// Frames are `u32` little-endian length + payload. Reads are buffered
/// internally so a deadline can expire mid-frame without losing the
/// partial data: the next `recv_deadline` (or `try_recv`) resumes where
/// it stopped.
pub struct TcpChannel {
    stream: TcpStream,
    peer: String,
    inbox: FrameBuffer,
    outbox: WriteBuffer,
    registration: Option<Registration>,
    /// Peer hung up: serve remaining buffered frames, then `Closed`.
    eof: bool,
    write_timeout: Duration,
}

impl TcpChannel {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpChannel, NetError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Wraps an accepted stream.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn from_stream(stream: TcpStream) -> Result<TcpChannel, NetError> {
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map_or_else(|_| "unknown".into(), |a| a.to_string());
        Ok(TcpChannel {
            stream,
            peer,
            inbox: FrameBuffer::new(),
            outbox: WriteBuffer::new(),
            registration: None,
            eof: false,
            write_timeout: DEFAULT_WRITE_TIMEOUT,
        })
    }

    /// Overrides the blocking-path write timeout (see
    /// [`DEFAULT_WRITE_TIMEOUT`]).
    pub fn set_write_timeout(&mut self, timeout: Duration) {
        self.write_timeout = timeout;
    }

    /// Reads toward a target `inbox` length, returning `false` on a
    /// clean timeout. Blocking path only.
    fn fill_until(&mut self, target: usize, deadline: Instant) -> Result<bool, NetError> {
        let mut buf = [0u8; 16 * 1024];
        while self.inbox.len() < target {
            let now = Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            // Bound each read by the remaining budget so a stalled peer
            // cannot block past the deadline.
            let budget = deadline - now;
            self.stream
                .set_read_timeout(Some(budget.max(Duration::from_millis(1))))?;
            let want = (target - self.inbox.len()).min(buf.len());
            match self.stream.read(&mut buf[..want]) {
                Ok(0) => return Err(NetError::Closed),
                Ok(n) => self.inbox.push(&buf[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(false);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_disconnect(&e) => return Err(NetError::Closed),
                Err(e) => return Err(e.into()),
            }
        }
        Ok(true)
    }

    /// Installs `interest` in the poller if it changed.
    fn set_interest(&mut self, interest: Interest) -> Result<(), NetError> {
        if let Some(reg) = &mut self.registration {
            if reg.interest != interest {
                reg.handle
                    .reregister(self.stream.as_raw_fd(), reg.token, interest)?;
                reg.interest = interest;
            }
        }
        Ok(())
    }

    /// Flushes the outbox and keeps write interest in sync with whether
    /// a backlog remains.
    fn flush_outbox(&mut self) -> Result<bool, NetError> {
        let drained = match self.outbox.write_to(&mut self.stream) {
            Ok(drained) => drained,
            Err(e) if is_disconnect(&e) || e.kind() == ErrorKind::WriteZero => {
                return Err(NetError::Closed)
            }
            Err(e) => return Err(e.into()),
        };
        self.set_interest(if drained {
            Interest::READ
        } else {
            Interest::READ_WRITE
        })?;
        Ok(drained)
    }
}

/// Error kinds that mean "the peer is gone", not "I/O is broken".
fn is_disconnect(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof
            | ErrorKind::NotConnected
    )
}

impl Channel for TcpChannel {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        if self.registration.is_some() {
            // Evented mode: enqueue and flush opportunistically; the
            // event loop drains any backlog under write readiness.
            self.outbox.queue_frame(frame);
            self.flush_outbox()?;
            return Ok(());
        }
        // Blocking mode, but never unbounded: a peer that stops reading
        // fills its socket buffer and would otherwise park the
        // coordinator in write(2) forever. The deadline is *overall*
        // (each write(2) is bounded by the remaining budget, like
        // `fill_until`), so a peer draining one byte per poll cannot
        // extend it; expiry surfaces as NetError::Timeout → a detected
        // dropout. (A timeout can tear a frame mid-write, so the
        // connection must be dropped after.)
        let deadline = Instant::now() + self.write_timeout;
        let mut msg = Vec::with_capacity(4 + frame.len());
        msg.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        msg.extend_from_slice(frame);
        let mut written = 0;
        while written < msg.len() {
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout);
            }
            let budget = deadline - now;
            self.stream
                .set_write_timeout(Some(budget.max(Duration::from_millis(1))))?;
            match self.stream.write(&msg[written..]) {
                Ok(0) => return Err(NetError::Closed),
                Ok(n) => written += n,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Err(NetError::Timeout);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_disconnect(&e) => return Err(NetError::Closed),
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    fn recv_deadline(&mut self, deadline: Instant) -> Result<Vec<u8>, NetError> {
        loop {
            if let Some(frame) = self.inbox.take_frame()? {
                return Ok(frame);
            }
            if self.eof {
                return Err(NetError::Closed);
            }
            if !self.fill_until(self.inbox.needed(), deadline)? {
                return Err(NetError::Timeout);
            }
        }
    }

    fn recycle_frame(&mut self, frame: Vec<u8>) {
        self.inbox.recycle(frame);
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

impl EventedChannel for TcpChannel {
    fn register(&mut self, reactor: &mut Reactor, token: Token) -> Result<(), NetError> {
        let telemetry = reactor.telemetry();
        if telemetry.is_enabled() {
            self.inbox.set_counters(
                telemetry.counter("dordis_frames_recycled_total", &[]),
                telemetry.counter("dordis_frames_allocated_total", &[]),
            );
        }
        self.stream.set_nonblocking(true)?;
        let fd = self.stream.as_raw_fd();
        let interest = if self.outbox.is_empty() {
            Interest::READ
        } else {
            Interest::READ_WRITE
        };
        match &mut self.registration {
            Some(reg) => {
                let handle = reg.handle;
                handle.reregister(fd, token, interest)?;
                reg.token = token;
                reg.interest = interest;
            }
            None => {
                let handle = reactor.handle();
                handle.register(fd, token, interest)?;
                self.registration = Some(Registration {
                    handle,
                    token,
                    interest,
                });
            }
        }
        Ok(())
    }

    fn deregister(&mut self) -> Result<(), NetError> {
        if let Some(reg) = self.registration.take() {
            reg.handle.deregister(self.stream.as_raw_fd())?;
        }
        // The stream stays non-blocking: a deregistered channel is in
        // transit between reactors, and the next `register` call binds
        // it fresh on the destination's poller.
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        // Drain the kernel buffer first so level-triggered epoll goes
        // quiet once everything available has been reassembled.
        let mut buf = [0u8; 16 * 1024];
        while !self.eof {
            match self.stream.read(&mut buf) {
                Ok(0) => self.eof = true,
                Ok(n) => self.inbox.push(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_disconnect(&e) => self.eof = true,
                Err(e) => return Err(e.into()),
            }
        }
        if let Some(frame) = self.inbox.take_frame()? {
            return Ok(Some(frame));
        }
        if self.eof {
            return Err(NetError::Closed);
        }
        Ok(None)
    }

    fn try_flush(&mut self) -> Result<bool, NetError> {
        self.flush_outbox()
    }

    fn wants_write(&self) -> bool {
        !self.outbox.is_empty()
    }
}

/// Listening socket yielding [`TcpChannel`]s.
pub struct TcpAcceptor {
    listener: TcpListener,
    local: String,
}

impl TcpAcceptor {
    /// Binds to `addr` (use port 0 for an OS-assigned port, reported by
    /// [`Acceptor::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: impl ToSocketAddrs) -> Result<TcpAcceptor, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener
            .local_addr()
            .map_or_else(|_| "unknown".into(), |a| a.to_string());
        Ok(TcpAcceptor { listener, local })
    }
}

impl Acceptor for TcpAcceptor {
    fn accept(&mut self, deadline: Instant) -> Result<Box<dyn EventedChannel>, NetError> {
        // Poll with a short accept window so the deadline is honored
        // without platform-specific listener timeouts.
        self.listener.set_nonblocking(true)?;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    return Ok(Box::new(TcpChannel::from_stream(stream)?));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Timeout);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn local_addr(&self) -> String {
        self.local.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::deadline_in;

    #[test]
    fn frame_buffer_reuses_recycled_allocations() {
        let mut buf = FrameBuffer::new();
        // Recycle a buffer with a recognizable (over-sized) capacity.
        buf.recycle(Vec::with_capacity(4096));
        let mut stream = Vec::new();
        for payload in [&b"abc"[..], b"defgh"] {
            stream.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            stream.extend_from_slice(payload);
        }
        buf.push(&stream);
        let first = buf.take_frame().unwrap().expect("first frame");
        assert_eq!(first, b"abc");
        assert!(
            first.capacity() >= 4096,
            "pooled allocation not reused (capacity {})",
            first.capacity()
        );
        // Recycle it again: the next frame rides the same allocation.
        buf.recycle(first);
        let second = buf.take_frame().unwrap().expect("second frame");
        assert_eq!(second, b"defgh");
        assert!(second.capacity() >= 4096);
        assert!(buf.is_empty(), "stream fully consumed");
        assert!(buf.take_frame().unwrap().is_none());
    }

    #[test]
    fn frame_buffer_cursor_survives_interleaved_push_and_take() {
        // Frames are consumed via the read cursor while later bytes
        // keep arriving; the reassembly must stay byte-exact across
        // compactions.
        let frames: Vec<Vec<u8>> = (0..50u8)
            .map(|i| vec![i; 1 + usize::from(i) * 7 % 40])
            .collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&(f.len() as u32).to_le_bytes());
            stream.extend_from_slice(f);
        }
        let mut buf = FrameBuffer::new();
        let mut got = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let n = (pos * 13 % 9 + 1).min(stream.len() - pos);
            buf.push(&stream[pos..pos + n]);
            pos += n;
            while let Some(frame) = buf.take_frame().unwrap() {
                got.push(frame.clone());
                buf.recycle(frame); // exercise reuse mid-stream
            }
        }
        assert_eq!(got, frames);
        assert!(buf.is_empty());
    }

    #[test]
    fn tcp_frames_roundtrip() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let handle = std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(addr).unwrap();
            chan.send(b"from-client").unwrap();
            chan.recv_deadline(deadline_in(Duration::from_secs(2)))
                .unwrap()
        });
        let mut server = acceptor
            .accept(deadline_in(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(
            server
                .recv_deadline(deadline_in(Duration::from_secs(2)))
                .unwrap(),
            b"from-client"
        );
        server.send(b"from-server").unwrap();
        assert_eq!(handle.join().unwrap(), b"from-server");
    }

    #[test]
    fn tcp_timeout_then_recovery() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let handle = std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(80));
            chan.send(b"late").unwrap();
            // Keep the connection alive until the server has read.
            std::thread::sleep(Duration::from_millis(200));
        });
        let mut server = acceptor
            .accept(deadline_in(Duration::from_secs(2)))
            .unwrap();
        let early = server.recv_deadline(deadline_in(Duration::from_millis(10)));
        assert!(matches!(early, Err(NetError::Timeout)));
        let late = server
            .recv_deadline(deadline_in(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(late, b"late");
        handle.join().unwrap();
    }

    #[test]
    fn disconnect_is_detected() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let handle = std::thread::spawn(move || {
            let _chan = TcpChannel::connect(addr).unwrap();
            // Dropped immediately: simulates a killed client.
        });
        let mut server = acceptor
            .accept(deadline_in(Duration::from_secs(2)))
            .unwrap();
        handle.join().unwrap();
        let err = server.recv_deadline(deadline_in(Duration::from_secs(2)));
        assert!(matches!(err, Err(NetError::Closed)), "{err:?}");
    }

    #[test]
    fn stalled_reader_surfaces_send_timeout() {
        // The peer never reads: both socket buffers fill and a blocking
        // send must surface NetError::Timeout (a detected dropout)
        // instead of wedging the coordinator forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let chan = TcpChannel::connect(addr).unwrap();
            // Hold the connection open without reading.
            std::thread::sleep(Duration::from_secs(3));
            drop(chan);
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpChannel::from_stream(stream).unwrap();
        server.set_write_timeout(Duration::from_millis(200));
        let big = vec![0u8; 32 << 20];
        let start = Instant::now();
        let err = server.send(&big);
        assert!(matches!(err, Err(NetError::Timeout)), "{err:?}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "send blocked for {:?}",
            start.elapsed()
        );
        handle.join().unwrap();
    }

    #[test]
    fn slow_draining_reader_hits_overall_send_deadline() {
        // The peer drains a trickle — every read makes *some* progress,
        // so a per-write timeout would reset forever. The deadline is
        // overall: send must give up within ~write_timeout regardless.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(addr).unwrap();
            let mut byte = [0u8; 1];
            for _ in 0..20 {
                std::thread::sleep(Duration::from_millis(100));
                if chan.stream.read(&mut byte).is_err() {
                    break;
                }
            }
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpChannel::from_stream(stream).unwrap();
        server.set_write_timeout(Duration::from_millis(400));
        let big = vec![0u8; 32 << 20];
        let start = Instant::now();
        let err = server.send(&big);
        assert!(matches!(err, Err(NetError::Timeout)), "{err:?}");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "overall deadline did not hold: {:?}",
            start.elapsed()
        );
        drop(server);
        handle.join().unwrap();
    }

    #[test]
    fn evented_channel_reassembles_and_flushes() {
        use crate::reactor::{Reactor, Token};

        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let client = std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(addr).unwrap();
            // Dribble one frame byte by byte to force reassembly.
            let frame = b"dribbled".to_vec();
            let mut msg = (frame.len() as u32).to_le_bytes().to_vec();
            msg.extend_from_slice(&frame);
            for b in msg {
                use std::io::Write as _;
                chan.stream.write_all(&[b]).unwrap();
                chan.stream.flush().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
            chan.recv_deadline(deadline_in(Duration::from_secs(5)))
                .unwrap()
        });

        let mut reactor = Reactor::new(Duration::from_millis(5)).unwrap();
        let mut server = acceptor
            .accept(deadline_in(Duration::from_secs(2)))
            .unwrap();
        server.register(&mut reactor, Token(1)).unwrap();

        let (mut events, mut expired) = (Vec::new(), Vec::new());
        let frame = loop {
            reactor
                .poll(&mut events, &mut expired, Duration::from_secs(1))
                .unwrap();
            let mut got = None;
            for ev in &events {
                assert_eq!(ev.token, Token(1));
                if ev.readable {
                    if let Some(f) = server.try_recv().unwrap() {
                        got = Some(f);
                    }
                }
            }
            if let Some(f) = got {
                break f;
            }
        };
        assert_eq!(frame, b"dribbled");

        // Evented send queues + flushes; small frames drain immediately.
        server.send(b"echo").unwrap();
        while server.wants_write() {
            reactor
                .poll(&mut events, &mut expired, Duration::from_millis(50))
                .unwrap();
            server.try_flush().unwrap();
        }
        assert_eq!(client.join().unwrap(), b"echo");
    }
}
