//! The coordinator's compute plane: a [`dordis_compute::Pool`] whose
//! completions are published back into the reactor through the
//! [`WakeQueue`](crate::reactor::WakeQueue).
//!
//! The coordinator submits per-chunk unmask/aggregate jobs (survivor
//! self-mask expansion, per-dropped-client pairwise re-expansion after
//! Shamir reconstruction, masked-sum accumulation — each sliced to its
//! chunk's element range via the seekable PRG) and keeps collecting
//! frames; when a worker finishes, the notifier wakes the reactor under
//! [`COMPUTE_TOKEN`], so a finished chunk arrives at the event loop
//! exactly like network readiness — in the same `epoll_pwait` sleep,
//! with no polling. Under the legacy poll sweep (no reactor) the plane
//! still parallelizes the CPU work; completions are then drained in the
//! sweep's idle slots and at the stage barrier.

use std::sync::Arc;

use dordis_compute::{JobOutcome, Notifier, Pool, PoolStats};

use crate::reactor::{Token, WakeQueue};

/// Reactor token under which compute completions surface. Lives in the
/// reserved top-of-range namespace next to the stage timer; it never
/// maps to a client id, so every collection loop naturally ignores the
/// event and lets the idle hook drain the pool.
pub const COMPUTE_TOKEN: Token = Token(u64::MAX - 3);

/// One pooled unmask job's result: the chunk's aggregate in `Z_{2^b}`.
pub type ChunkSum = Vec<u64>;

/// The worker pool plus its reactor wiring. Owned by the
/// [`Session`](crate::session::Session), so workers stay warm across
/// rounds.
pub struct ComputePlane {
    pool: Pool<ChunkSum>,
    workers: usize,
}

impl ComputePlane {
    /// Spawns `workers` threads. With a waker, every completion pokes
    /// the reactor under [`COMPUTE_TOKEN`]; without one (poll-sweep
    /// mode) completions just queue until drained.
    #[must_use]
    pub fn new(workers: usize, waker: Option<Arc<WakeQueue>>) -> ComputePlane {
        let workers = workers.max(1);
        let notifier: Option<Notifier> =
            waker.map(|w| Arc::new(move || w.wake(COMPUTE_TOKEN)) as Notifier);
        ComputePlane {
            pool: Pool::new(workers, notifier),
            workers,
        }
    }

    /// Worker thread count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queues one chunk's unmask job.
    pub fn submit(&mut self, chunk: usize, job: impl FnOnce() -> ChunkSum + Send + 'static) {
        self.pool.submit(chunk as u64, job);
    }

    /// Non-blocking drain of one completion.
    pub fn try_complete(&mut self) -> Option<(usize, JobOutcome<ChunkSum>)> {
        self.pool
            .try_complete()
            .map(|(id, outcome)| (id as usize, outcome))
    }

    /// Blocking drain of one completion; `None` when nothing is in
    /// flight.
    pub fn wait_complete(&mut self) -> Option<(usize, JobOutcome<ChunkSum>)> {
        self.pool
            .wait_complete()
            .map(|(id, outcome)| (id as usize, outcome))
    }

    /// Jobs submitted but not yet drained.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.pool.in_flight()
    }

    /// Discards every in-flight job's result, blocking on jobs still
    /// running. An aborted round can leave its submitted-but-undrained
    /// chunk sums queued in the session-warm pool; the next round's
    /// chunk indices would collide with them and
    /// `install_chunk_sum` would accept the stale data — so the
    /// coordinator calls this before submitting a new round's jobs.
    pub fn discard_stale(&mut self) {
        while self.pool.wait_complete().is_some() {}
    }

    /// Lifetime pool counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Publishes the pool's counters into the metrics registry. Called
    /// by the coordinator at each round's unmask barrier — gauges want
    /// a point-in-time publisher, and the barrier is when the numbers
    /// mean something (every job of the round accounted for). No-op
    /// with disabled telemetry.
    pub fn sync_metrics(&self, telemetry: &dordis_telemetry::Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        let stats = self.stats();
        telemetry
            .gauge("dordis_compute_queue_depth", &[])
            .set(self.pool.queue_depth());
        telemetry
            .gauge("dordis_compute_queue_depth_peak", &[])
            .set(stats.queue_peak);
        telemetry
            .gauge("dordis_compute_jobs_submitted", &[])
            .set(stats.submitted);
        telemetry
            .gauge("dordis_compute_jobs_drained", &[])
            .set(stats.drained);
        telemetry
            .gauge("dordis_compute_jobs_panicked", &[])
            .set(stats.panics);
        for (i, busy) in stats.worker_busy_ns.iter().enumerate() {
            let worker = i.to_string();
            telemetry
                .gauge("dordis_compute_worker_busy_ns", &[("worker", &worker)])
                .set(*busy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactor::Reactor;
    use std::time::Duration;

    #[test]
    fn completion_wakes_the_reactor_under_compute_token() {
        let mut reactor = Reactor::new(Duration::from_millis(5)).unwrap();
        let mut plane = ComputePlane::new(2, Some(reactor.waker()));
        plane.submit(3, || vec![1, 2, 3]);

        // The completion must surface as a readable COMPUTE_TOKEN event
        // without any timer or fd activity.
        let (mut events, mut expired) = (Vec::new(), Vec::new());
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            reactor
                .poll(&mut events, &mut expired, Duration::from_millis(100))
                .unwrap();
            if events
                .iter()
                .any(|e| e.token == COMPUTE_TOKEN && e.readable)
            {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no compute wake");
        }
        let (chunk, outcome) = plane.wait_complete().expect("one job");
        assert_eq!(chunk, 3);
        assert!(matches!(outcome, JobOutcome::Done(v) if v == vec![1, 2, 3]));
        assert_eq!(plane.in_flight(), 0);
    }

    #[test]
    fn sweep_mode_without_waker_still_completes() {
        let mut plane = ComputePlane::new(1, None);
        plane.submit(0, || vec![9]);
        let (chunk, outcome) = plane.wait_complete().expect("job");
        assert_eq!(chunk, 0);
        assert!(matches!(outcome, JobOutcome::Done(v) if v == vec![9]));
    }

    #[test]
    fn discard_stale_flushes_an_aborted_rounds_leftovers() {
        // Round N submits chunks 0 and 1, drains only chunk-0-or-1 once
        // (the abort fires mid-barrier), and the round ends. The next
        // round's chunk 0 must never see round N's queued sum.
        let mut plane = ComputePlane::new(1, None);
        plane.submit(0, || vec![111]);
        plane.submit(1, || vec![222]);
        let _ = plane.wait_complete().expect("one completion");
        assert!(plane.in_flight() > 0, "a leftover is still queued");

        plane.discard_stale();
        assert_eq!(plane.in_flight(), 0);

        // The new round's job is the only thing that comes out.
        plane.submit(0, || vec![333]);
        let (chunk, outcome) = plane.wait_complete().expect("new job");
        assert_eq!(chunk, 0);
        assert!(matches!(outcome, JobOutcome::Done(v) if v == vec![333]));
        assert!(plane.wait_complete().is_none());
    }
}
