//! Transport abstraction: framed, bidirectional, deadline-aware message
//! channels, plus the server-side acceptor — and the deterministic
//! in-memory loopback implementation used by tests and the in-process
//! networked round.
//!
//! Every accepted channel is an [`EventedChannel`], so the coordinator
//! can drive it either through the blocking [`Channel`] API (the legacy
//! poll sweep) or through reactor readiness. The loopback transport has
//! no file descriptor; its readiness travels through the reactor's
//! [`WakeQueue`](crate::reactor::WakeQueue) — a sender publishes the
//! receiving end's token and pokes the wake pipe.

use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use dordis_telemetry::Telemetry;

use crate::codec::Envelope;
use crate::pool::ChannelAccount;
use crate::reactor::{EventedChannel, Reactor, Token, WakeQueue};
use crate::NetError;

/// A bidirectional, framed, deadline-aware message channel to one peer.
///
/// Implementations deliver whole frames (no partial reads surface here)
/// and preserve per-peer FIFO order. `recv_deadline` returning
/// [`NetError::Timeout`] leaves the channel usable; [`NetError::Closed`]
/// is terminal.
pub trait Channel: Send {
    /// Sends one frame. On a channel registered with a reactor this
    /// enqueues and flushes opportunistically — `Ok` means queued, and
    /// [`EventedChannel::try_flush`] drains any backlog under write
    /// readiness.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] if the peer is gone, [`NetError::Timeout`]
    /// if a blocking send stalled past the transport's write timeout
    /// (the frame may be torn — drop the peer), [`NetError::Io`] on
    /// transport failure.
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError>;

    /// Receives the next frame, waiting until `deadline` at most.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] when the deadline passes (channel still
    /// usable), [`NetError::Closed`] when the peer disconnected.
    fn recv_deadline(&mut self, deadline: Instant) -> Result<Vec<u8>, NetError>;

    /// Hands a received frame's allocation back to the channel once the
    /// caller is done with it, so the next reassembled frame can reuse
    /// it instead of allocating. Purely an optimization — the default
    /// drops the buffer, which is always correct.
    fn recycle_frame(&mut self, frame: Vec<u8>) {
        drop(frame);
    }

    /// Sends an already-encoded wire message — 4-byte little-endian
    /// length prefix followed by the frame (see [`wire_message`]). The
    /// broadcast path encodes a frame *once* and calls this on every
    /// channel; transports with a refcount-aware egress queue (TCP
    /// registered with a reactor) share the allocation across all peers
    /// instead of copying it N times. The default re-sends the embedded
    /// frame through [`send`](Channel::send), which is always correct.
    ///
    /// # Errors
    ///
    /// Same contract as [`send`](Channel::send).
    fn send_wire_shared(&mut self, msg: &Arc<[u8]>) -> Result<(), NetError> {
        self.send(&msg[4..])
    }

    /// Human-readable peer address for diagnostics.
    fn peer(&self) -> String;
}

/// Encodes a frame into its on-the-wire form (4-byte little-endian
/// length prefix + payload) as a refcounted allocation, ready for
/// [`Channel::send_wire_shared`] fan-out.
#[must_use]
pub fn wire_message(frame: &[u8]) -> Arc<[u8]> {
    let mut msg = Vec::with_capacity(4 + frame.len());
    msg.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    msg.extend_from_slice(frame);
    msg.into()
}

/// Server-side half of a transport: yields one [`EventedChannel`] per
/// connecting client (usable through the blocking [`Channel`] API until
/// registered with a reactor).
pub trait Acceptor {
    /// Accepts the next peer, waiting until `deadline` at most.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] when the deadline passes, [`NetError::Io`] /
    /// [`NetError::Closed`] on transport failure.
    fn accept(&mut self, deadline: Instant) -> Result<Box<dyn EventedChannel>, NetError>;

    /// Wires the acceptor's counters (accepts, rejections) into a
    /// metrics registry. Default: no instrumentation.
    fn set_telemetry(&mut self, telemetry: &Telemetry) {
        let _ = telemetry;
    }

    /// The address clients should connect to.
    fn local_addr(&self) -> String;
}

/// Sends an [`Envelope`] over a channel.
///
/// # Errors
///
/// Propagates the channel's send failure.
pub fn send_env(chan: &mut dyn Channel, env: &Envelope) -> Result<(), NetError> {
    chan.send(&env.encode())
}

/// Receives and decodes an [`Envelope`].
///
/// # Errors
///
/// Propagates receive and decode failures.
pub fn recv_env(chan: &mut dyn Channel, deadline: Instant) -> Result<Envelope, NetError> {
    Envelope::decode(&chan.recv_deadline(deadline)?)
}

// ---------------------------------------------------------------------
// Loopback.
// ---------------------------------------------------------------------

/// Where one loopback end publishes its reactor registration, so the
/// *peer* end (usually on another thread) can wake the reactor whenever
/// it makes this end readable (a send) or unreadable-forever (a drop).
type RegSlot = Arc<Mutex<Option<(Arc<WakeQueue>, Token)>>>;

/// One end of an in-memory channel pair.
pub struct LoopbackChannel {
    /// `None` once this end has begun tearing down (see `Drop`).
    tx: Option<mpsc::Sender<Vec<u8>>>,
    rx: mpsc::Receiver<Vec<u8>>,
    label: String,
    /// This end's reactor registration (peer reads it to wake us).
    my_reg: RegSlot,
    /// The peer end's registration (we wake it on send/drop).
    peer_reg: RegSlot,
    /// Shared-pool account, opened at reactor registration — loopback
    /// charges the same ingress budget as TCP so driver-equivalence
    /// tests and loopback benches exercise the backpressure path.
    account: Option<ChannelAccount>,
    /// Bytes of delivered frames not yet recycled.
    outstanding: usize,
    /// Backpressure: `try_recv` refuses to pull until recycles drain
    /// the charge below the low-water mark (the loopback analogue of
    /// dropping read interest).
    paused: bool,
}

impl LoopbackChannel {
    /// Creates a connected pair of loopback channels.
    #[must_use]
    pub fn pair(label: &str) -> (LoopbackChannel, LoopbackChannel) {
        let (a_tx, b_rx) = mpsc::channel();
        let (b_tx, a_rx) = mpsc::channel();
        let a_reg: RegSlot = Arc::new(Mutex::new(None));
        let b_reg: RegSlot = Arc::new(Mutex::new(None));
        (
            LoopbackChannel {
                tx: Some(a_tx),
                rx: a_rx,
                label: format!("loopback:{label}:a"),
                my_reg: Arc::clone(&a_reg),
                peer_reg: Arc::clone(&b_reg),
                account: None,
                outstanding: 0,
                paused: false,
            },
            LoopbackChannel {
                tx: Some(b_tx),
                rx: b_rx,
                label: format!("loopback:{label}:b"),
                my_reg: b_reg,
                peer_reg: a_reg,
                account: None,
                outstanding: 0,
                paused: false,
            },
        )
    }

    /// Wakes the peer end's reactor, if that end is registered.
    fn wake_peer(&self) {
        if let Ok(guard) = self.peer_reg.lock() {
            if let Some((waker, token)) = guard.as_ref() {
                waker.wake(*token);
            }
        }
    }

    /// Wakes *this* end's reactor — used on backpressure resume, when
    /// frames may already sit in the queue with no new send coming.
    fn wake_self(&self) {
        if let Ok(guard) = self.my_reg.lock() {
            if let Some((waker, token)) = guard.as_ref() {
                waker.wake(*token);
            }
        }
    }

    /// Records a delivered frame against the ingress budget.
    fn charge_delivery(&mut self, len: usize) {
        if let Some(acct) = &self.account {
            acct.charge_ingress(len);
            self.outstanding += len;
        }
    }
}

impl Channel for LoopbackChannel {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        let tx = self.tx.as_ref().ok_or(NetError::Closed)?;
        tx.send(frame.to_vec()).map_err(|_| NetError::Closed)?;
        self.wake_peer();
        Ok(())
    }

    fn recv_deadline(&mut self, deadline: Instant) -> Result<Vec<u8>, NetError> {
        let now = Instant::now();
        let wait = deadline.saturating_duration_since(now);
        match self.rx.recv_timeout(wait) {
            Ok(frame) => {
                self.charge_delivery(frame.len());
                Ok(frame)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }

    fn recycle_frame(&mut self, frame: Vec<u8>) {
        let credit = frame.len().min(self.outstanding);
        self.outstanding -= credit;
        if let Some(acct) = &self.account {
            acct.credit_ingress(credit);
            acct.put(frame);
            if self.paused && acct.should_resume() {
                acct.set_paused(false);
                self.paused = false;
                // Frames may already be queued with no new send coming:
                // schedule our own readiness sweep.
                self.wake_self();
            }
        }
    }

    fn peer(&self) -> String {
        self.label.clone()
    }
}

impl EventedChannel for LoopbackChannel {
    fn register(&mut self, reactor: &mut Reactor, token: Token) -> Result<(), NetError> {
        let pool = reactor.pool();
        let fresh = match &self.account {
            Some(acct) => !acct.pool().same_as(&pool),
            None => true,
        };
        if fresh {
            // Same rebind semantics as TCP: charge current custody to
            // the new pool; the replaced account's drop credits the old.
            let acct = pool.account();
            acct.charge_ingress(self.outstanding);
            self.paused = false;
            self.account = Some(acct);
        }
        let waker = reactor.waker();
        if let Ok(mut guard) = self.my_reg.lock() {
            *guard = Some((Arc::clone(&waker), token));
        }
        // Frames sent before registration produced no wake; schedule an
        // initial sweep so they are discovered on the next poll.
        waker.wake(token);
        Ok(())
    }

    fn deregister(&mut self) -> Result<(), NetError> {
        // Clearing the slot stops the peer waking a reactor this
        // channel no longer belongs to (e.g. a shard reactor that has
        // since shut down).
        if let Ok(mut guard) = self.my_reg.lock() {
            *guard = None;
        }
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        if self.paused {
            // Backpressure: leave queued frames where they are until
            // recycles drain the charge (recycle_frame re-arms us).
            return Ok(None);
        }
        match self.rx.try_recv() {
            Ok(frame) => {
                self.charge_delivery(frame.len());
                if let Some(acct) = &self.account {
                    if acct.should_pause() {
                        acct.set_paused(true);
                        self.paused = true;
                    }
                }
                Ok(Some(frame))
            }
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => Err(NetError::Closed),
        }
    }

    fn try_flush(&mut self) -> Result<bool, NetError> {
        Ok(true) // mpsc sends never backlog
    }

    fn wants_write(&self) -> bool {
        false
    }
}

impl Drop for LoopbackChannel {
    fn drop(&mut self) {
        // Disconnect *before* waking, so a reactor woken by this drop
        // observes `Disconnected` rather than a spurious empty queue.
        drop(self.tx.take());
        self.wake_peer();
    }
}

/// Connection point for loopback clients: cloneable dialer plus a
/// server-side acceptor.
pub struct LoopbackHub {
    tx: mpsc::Sender<LoopbackChannel>,
}

impl Clone for LoopbackHub {
    fn clone(&self) -> Self {
        LoopbackHub {
            tx: self.tx.clone(),
        }
    }
}

impl LoopbackHub {
    /// Creates the hub and its acceptor.
    #[must_use]
    pub fn new() -> (LoopbackHub, LoopbackAcceptor) {
        let (tx, rx) = mpsc::channel();
        (LoopbackHub { tx }, LoopbackAcceptor { rx })
    }

    /// Connects a new client channel; the peer end is handed to the
    /// acceptor.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] if the acceptor is gone.
    pub fn connect(&self, label: &str) -> Result<LoopbackChannel, NetError> {
        let (client_end, server_end) = LoopbackChannel::pair(label);
        self.tx.send(server_end).map_err(|_| NetError::Closed)?;
        Ok(client_end)
    }
}

/// Server side of a [`LoopbackHub`].
pub struct LoopbackAcceptor {
    rx: mpsc::Receiver<LoopbackChannel>,
}

impl Acceptor for LoopbackAcceptor {
    fn accept(&mut self, deadline: Instant) -> Result<Box<dyn EventedChannel>, NetError> {
        let wait = deadline.saturating_duration_since(Instant::now());
        match self.rx.recv_timeout(wait) {
            Ok(chan) => Ok(Box::new(chan)),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }

    fn local_addr(&self) -> String {
        "loopback".into()
    }
}

// ---------------------------------------------------------------------
// Injected-latency wrapper.
// ---------------------------------------------------------------------

/// A [`Channel`] wrapper that injects per-stage uplink latency: every
/// `send` first *occupies* the link for `per_frame + len / bytes_per_sec`
/// (the sender sleeps, modelling serialization onto a bandwidth-limited
/// uplink) and only then enqueues the frame. Used by the pipeline
/// benches/tests to realize Figure 12's comm/compute overlap on a
/// loopback transport: while a client is "transmitting" chunk `c+1`,
/// the coordinator is aggregating chunk `c`. Client-side only (it wraps
/// the blocking API and is never registered with a reactor).
///
/// With a [`LossProfile`] attached ([`ThrottledChannel::with_loss`]) the
/// channel also models a lossy uplink: masked-input *data* frames are
/// probabilistically dropped or swapped with the next data frame. Loss
/// is scoped to the data plane deliberately — control frames ride a
/// reliable transport in every real deployment (TCP retransmits them),
/// while a lost data chunk is exactly how the paper's dropout model
/// manifests on the wire: the coordinator's per-(stage, chunk) deadline
/// expires and the client becomes a *detected* dropout.
pub struct ThrottledChannel {
    inner: Box<dyn Channel>,
    bytes_per_sec: u64,
    per_frame: Duration,
    loss: Option<LossState>,
}

/// Probabilistic loss model for [`ThrottledChannel::with_loss`].
#[derive(Clone, Copy, Debug)]
pub struct LossProfile {
    /// Probability a masked-input frame vanishes in flight.
    pub drop_prob: f64,
    /// Probability a masked-input frame is held and delivered *after*
    /// the next masked-input frame (adjacent reorder).
    pub reorder_prob: f64,
    /// Seed for the deterministic loss sequence (splitmix64).
    pub seed: u64,
}

struct LossState {
    profile: LossProfile,
    rng: u64,
    held: Option<Vec<u8>>,
}

impl LossState {
    /// Next uniform draw in `[0, 1)` (splitmix64, 53 mantissa bits).
    fn roll(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl ThrottledChannel {
    /// Wraps `inner` with a simulated uplink of `bytes_per_sec`
    /// bandwidth and `per_frame` fixed latency per frame.
    #[must_use]
    pub fn new(inner: Box<dyn Channel>, bytes_per_sec: u64, per_frame: Duration) -> Self {
        ThrottledChannel {
            inner,
            bytes_per_sec: bytes_per_sec.max(1),
            per_frame,
            loss: None,
        }
    }

    /// Attaches a deterministic loss/reorder model to the uplink's
    /// masked-input data frames.
    #[must_use]
    pub fn with_loss(mut self, profile: LossProfile) -> Self {
        self.loss = Some(LossState {
            rng: profile.seed,
            profile,
            held: None,
        });
        self
    }

    /// Whether `frame` is a masked-input data frame (loss is scoped to
    /// the data plane; see the type docs).
    fn is_data_frame(frame: &[u8]) -> bool {
        frame.len() > 1 && frame[1] == crate::codec::StageTag::MaskedInput as u8
    }
}

impl Channel for ThrottledChannel {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        let transmit = Duration::from_secs_f64(frame.len() as f64 / self.bytes_per_sec as f64);
        let occupancy = self.per_frame + transmit;
        if !occupancy.is_zero() {
            std::thread::sleep(occupancy);
        }
        if let Some(loss) = &mut self.loss {
            if Self::is_data_frame(frame) {
                if loss.roll() < loss.profile.drop_prob {
                    return Ok(()); // eaten by the network, sender none the wiser
                }
                if let Some(held) = loss.held.take() {
                    // Deliver the newer frame first, then the held one:
                    // an adjacent swap on the wire.
                    self.inner.send(frame)?;
                    return self.inner.send(&held);
                }
                if loss.roll() < loss.profile.reorder_prob {
                    loss.held = Some(frame.to_vec());
                    return Ok(());
                }
            } else if let Some(held) = loss.held.take() {
                // A control frame ends the data burst: flush the held
                // chunk first so reordering stays within the stage.
                self.inner.send(&held)?;
            }
        }
        self.inner.send(frame)
    }

    fn recv_deadline(&mut self, deadline: Instant) -> Result<Vec<u8>, NetError> {
        self.inner.recv_deadline(deadline)
    }

    fn peer(&self) -> String {
        format!("throttled:{}", self.inner.peer())
    }
}

/// Convenience: a deadline `timeout` from now.
#[must_use]
pub fn deadline_in(timeout: Duration) -> Instant {
    Instant::now() + timeout
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrip_and_timeout() {
        let (mut a, mut b) = LoopbackChannel::pair("t");
        a.send(b"hello").unwrap();
        let got = b
            .recv_deadline(deadline_in(Duration::from_secs(1)))
            .unwrap();
        assert_eq!(got, b"hello");
        // Nothing pending: times out quickly.
        let err = b.recv_deadline(deadline_in(Duration::from_millis(10)));
        assert!(matches!(err, Err(NetError::Timeout)));
        // Dropping one end closes the other.
        drop(a);
        let err = b.recv_deadline(deadline_in(Duration::from_millis(10)));
        assert!(matches!(err, Err(NetError::Closed)));
    }

    #[test]
    fn hub_hands_channels_to_acceptor() {
        let (hub, mut acceptor) = LoopbackHub::new();
        let mut client = hub.connect("c0").unwrap();
        let mut server_side = acceptor
            .accept(deadline_in(Duration::from_secs(1)))
            .unwrap();
        client.send(b"ping").unwrap();
        assert_eq!(
            server_side
                .recv_deadline(deadline_in(Duration::from_secs(1)))
                .unwrap(),
            b"ping"
        );
        server_side.send(b"pong").unwrap();
        assert_eq!(
            client
                .recv_deadline(deadline_in(Duration::from_secs(1)))
                .unwrap(),
            b"pong"
        );
    }

    #[test]
    fn registered_loopback_reports_readiness_and_closure() {
        let mut reactor = Reactor::new(Duration::from_millis(5)).unwrap();
        let (mut client, mut server) = LoopbackChannel::pair("evented");
        server.register(&mut reactor, Token(3)).unwrap();

        // A frame sent from another thread wakes the reactor.
        let sender = std::thread::spawn(move || {
            client.send(b"over the wake pipe").unwrap();
            client // keep the end alive until the assert below
        });
        let (mut events, mut expired) = (Vec::new(), Vec::new());
        let frame = loop {
            reactor
                .poll(&mut events, &mut expired, Duration::from_secs(2))
                .unwrap();
            let mut got = None;
            for ev in &events {
                assert_eq!(ev.token, Token(3));
                if let Some(f) = server.try_recv().unwrap() {
                    got = Some(f);
                }
            }
            if let Some(f) = got {
                break f;
            }
        };
        assert_eq!(frame, b"over the wake pipe");
        assert!(matches!(server.try_recv(), Ok(None)));

        // Dropping the peer wakes the reactor and surfaces Closed.
        let client = sender.join().unwrap();
        drop(client);
        loop {
            reactor
                .poll(&mut events, &mut expired, Duration::from_secs(2))
                .unwrap();
            if !events.is_empty() {
                break;
            }
        }
        assert!(matches!(server.try_recv(), Err(NetError::Closed)));
    }

    #[test]
    fn lossy_channel_drops_and_reorders_only_data_frames() {
        use crate::codec::{Envelope, StageTag};
        const N: u16 = 200;

        let (a, mut b) = LoopbackChannel::pair("lossy");
        let mut lossy =
            ThrottledChannel::new(Box::new(a), u64::MAX, Duration::ZERO).with_loss(LossProfile {
                drop_prob: 0.2,
                reorder_prob: 0.2,
                seed: 7,
            });
        for c in 0..N {
            let env = Envelope::chunked(StageTag::MaskedInput, 1, c, vec![c as u8]);
            lossy.send(&env.encode()).unwrap();
        }
        let ctl = Envelope::new(StageTag::Unmasking, 1, Vec::new());
        lossy.send(&ctl.encode()).unwrap();

        let mut chunks: Vec<u16> = Vec::new();
        let mut got_ctl = false;
        while let Ok(frame) = b.recv_deadline(deadline_in(Duration::from_millis(100))) {
            let env = Envelope::decode(&frame).unwrap();
            if env.stage == StageTag::MaskedInput {
                assert!(!got_ctl, "data frame reordered past a control frame");
                chunks.push(env.chunk);
            } else {
                assert_eq!(env.stage, StageTag::Unmasking);
                got_ctl = true;
            }
        }
        assert!(got_ctl, "control frame must never be dropped");
        // Some data frames vanished, but nowhere near all of them.
        assert!(chunks.len() < usize::from(N), "nothing was dropped");
        assert!(chunks.len() > usize::from(N) / 2, "too much was dropped");
        // No duplication...
        let mut sorted = chunks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), chunks.len(), "a frame was duplicated");
        // ...and at least one adjacent swap actually happened.
        assert!(
            chunks.windows(2).any(|w| w[0] > w[1]),
            "nothing was reordered"
        );
    }

    #[test]
    fn budgeted_loopback_pauses_and_resumes() {
        const FRAMES: usize = 40;
        const LEN: usize = 4 * 1024;

        let mut reactor = Reactor::new(Duration::from_millis(5)).unwrap();
        // One connection → fair share = max(budget, floor) = 64 KiB,
        // well below the 160 KiB burst.
        reactor.set_ingress_budget(64 * 1024);
        let pool = reactor.pool();
        let (mut client, mut server) = LoopbackChannel::pair("budget");
        server.register(&mut reactor, Token(1)).unwrap();
        for i in 0..FRAMES {
            client.send(&vec![i as u8; LEN]).unwrap();
        }

        // Drain without recycling: the charge crosses the budget and
        // the channel pauses with frames still queued.
        let mut held = Vec::new();
        while let Some(frame) = server.try_recv().unwrap() {
            held.push(frame);
        }
        assert!(
            held.len() < FRAMES,
            "loopback never paused ({} frames pulled)",
            held.len()
        );
        assert_eq!(pool.paused_connections(), 1);
        assert!(pool.live_ingress() > 64 * 1024 / 2);

        // Recycling re-arms the channel and self-wakes the reactor.
        let mut next = 0usize;
        for frame in held.drain(..) {
            assert!(frame.iter().all(|&b| b == next as u8));
            next += 1;
            server.recycle_frame(frame);
        }
        assert_eq!(pool.paused_connections(), 0, "recycles did not re-arm");

        // The self-wake surfaces the queued remainder through a poll.
        let (mut events, mut expired) = (Vec::new(), Vec::new());
        let deadline = Instant::now() + Duration::from_secs(10);
        while next < FRAMES {
            assert!(Instant::now() < deadline, "stalled at frame {next}");
            reactor
                .poll(&mut events, &mut expired, Duration::from_millis(50))
                .unwrap();
            for ev in &events {
                assert_eq!(ev.token, Token(1));
                while let Some(frame) = server.try_recv().unwrap() {
                    assert!(
                        frame.iter().all(|&b| b == next as u8),
                        "frame {next} lost or reordered across the pause"
                    );
                    next += 1;
                    server.recycle_frame(frame);
                }
            }
        }
        drop(client);
        drop(server);
        assert_eq!(pool.live_ingress(), 0, "loopback ledger leaked");
    }
}
