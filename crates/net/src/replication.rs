//! Primary–backup replication of round-boundary session state.
//!
//! A coordinator crash used to lose the session: parked connections,
//! the round counter, the global model, and — worst — the privacy
//! ledger, whose loss or replay is a *privacy* bug, not just an
//! availability one. This module replicates the session's round-boundary
//! state to a backup coordinator:
//!
//! - At every round boundary the primary serializes a
//!   [`SessionCheckpoint`] and ships it as a
//!   [`StageTag::CheckpointInstall`] frame over a dedicated channel.
//! - The round **commits only after the backup acks**
//!   ([`StageTag::CheckpointAck`]): the ledger entry, the model update,
//!   and the parked survivor set become durable on two machines before
//!   either acts on them, so no failover can double-count a round.
//! - The backup holds a lease on the primary: every received frame
//!   renews it, and when it expires (or the connection drops) the
//!   backup promotes itself, best-effort announces a
//!   [`StageTag::ViewChange`] to the (possibly still-live) old primary,
//!   and resumes the session from its last installed checkpoint.
//!
//! The roles are a *typed* state machine in the
//! `sgdxbc/typing-protocols` idiom: each transition **consumes** the
//! old state and returns the next one, and transitions are the only
//! places that emit wire effects. A deposed primary cannot keep
//! committing because completing its [`AwaitingAck`] against a
//! `ViewChange` frame destroys the `Primary` value instead of returning
//! it — the type system enforces the handover.

use std::time::Duration;

use dordis_secagg::ClientId;
use dordis_telemetry::Telemetry;

use crate::codec::{Envelope, StageTag};
use crate::transport::{deadline_in, Channel};
use crate::NetError;

/// The session state a backup needs to resume from a round boundary.
///
/// `app_state` is opaque to this layer: the driver above the session
/// (e.g. `dordis-core`'s FL loop) serializes whatever it needs — the
/// privacy ledger (with its round watermark), the global model, the
/// round records — and gets the exact bytes back at takeover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionCheckpoint {
    /// Wire round id this checkpoint is a boundary of (the round just
    /// completed on the primary; the successor resumes at `round + 1`).
    pub round: u64,
    /// Rounds completed so far in the session.
    pub rounds_done: u64,
    /// Replication view the checkpoint was produced in (0 = the
    /// original primary; bumped once per takeover).
    pub view: u64,
    /// Identities of the peers parked on the session after the round —
    /// the connections themselves die with the primary, but the roster
    /// lets the successor size join deadlines and report continuity.
    pub parked: Vec<ClientId>,
    /// Opaque driver state (ledger, model, records), restored verbatim.
    pub app_state: Vec<u8>,
}

impl SessionCheckpoint {
    /// Serializes the checkpoint into a `CheckpointInstall` body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(8 * 3 + 4 + self.parked.len() * 4 + 4 + self.app_state.len());
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&self.rounds_done.to_le_bytes());
        out.extend_from_slice(&self.view.to_le_bytes());
        out.extend_from_slice(&(self.parked.len() as u32).to_le_bytes());
        for id in &self.parked {
            out.extend_from_slice(&id.to_le_bytes());
        }
        out.extend_from_slice(&(self.app_state.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.app_state);
        out
    }

    /// Decodes a `CheckpointInstall` body.
    ///
    /// # Errors
    ///
    /// [`NetError::Codec`] on truncated or oversized input.
    pub fn decode(body: &[u8]) -> Result<SessionCheckpoint, NetError> {
        fn take<'a>(body: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8], NetError> {
            let end = at
                .checked_add(n)
                .filter(|&e| e <= body.len())
                .ok_or_else(|| NetError::Codec("checkpoint body truncated".into()))?;
            let s = &body[*at..end];
            *at = end;
            Ok(s)
        }
        let mut at = 0usize;
        let round = u64::from_le_bytes(take(body, &mut at, 8)?.try_into().unwrap());
        let rounds_done = u64::from_le_bytes(take(body, &mut at, 8)?.try_into().unwrap());
        let view = u64::from_le_bytes(take(body, &mut at, 8)?.try_into().unwrap());
        let n_parked = u32::from_le_bytes(take(body, &mut at, 4)?.try_into().unwrap()) as usize;
        if n_parked > body.len() / 4 + 1 {
            return Err(NetError::Codec(
                "checkpoint parked count implausible".into(),
            ));
        }
        let mut parked = Vec::with_capacity(n_parked);
        for _ in 0..n_parked {
            parked.push(u32::from_le_bytes(
                take(body, &mut at, 4)?.try_into().unwrap(),
            ));
        }
        let app_len = u32::from_le_bytes(take(body, &mut at, 4)?.try_into().unwrap()) as usize;
        let app_state = take(body, &mut at, app_len)?.to_vec();
        if at != body.len() {
            return Err(NetError::Codec("checkpoint body has trailing bytes".into()));
        }
        Ok(SessionCheckpoint {
            round,
            rounds_done,
            view,
            parked,
            app_state,
        })
    }
}

// ---------------------------------------------------------------------
// Primary side.
// ---------------------------------------------------------------------

/// The primary role: free to run rounds; must [`Primary::ship`] a
/// checkpoint (becoming [`AwaitingAck`]) before committing one.
#[derive(Debug)]
pub struct Primary {
    view: u64,
}

impl Primary {
    /// A fresh primary in view 0.
    #[must_use]
    pub fn new() -> Primary {
        Primary { view: 0 }
    }

    /// The view this primary believes it leads.
    #[must_use]
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Ships `ckpt` to the backup. Consumes the primary: until the ack
    /// arrives the session holds an [`AwaitingAck`] and *cannot* commit
    /// (there is no other way back to a `Primary` value).
    ///
    /// # Errors
    ///
    /// Propagates the channel failure; the primary role is forfeited
    /// either way (an unreplicated round must never commit).
    pub fn ship(
        self,
        ckpt: &SessionCheckpoint,
        chan: &mut dyn Channel,
    ) -> Result<AwaitingAck, NetError> {
        let env = Envelope::new(StageTag::CheckpointInstall, ckpt.round, ckpt.encode());
        chan.send(&env.encode())?;
        Ok(AwaitingAck {
            view: self.view,
            round: ckpt.round,
        })
    }

    /// Says goodbye to the backup at clean session end, so it knows not
    /// to take over when the connection drops. Consumes the primary —
    /// the session is over.
    pub fn retire(self, chan: &mut dyn Channel) {
        let env = Envelope::new(StageTag::SessionEnd, 0, Vec::new());
        let _ = chan.send(&env.encode()); // best effort: backup may be gone
    }
}

impl Default for Primary {
    fn default() -> Self {
        Primary::new()
    }
}

/// A primary that shipped a checkpoint and is waiting for the backup's
/// ack. The only exits are [`AwaitingAck::complete`] (back to
/// [`Primary`]) or destruction (deposed / failed) — the round the
/// checkpoint covers cannot commit while this value exists.
#[derive(Debug)]
pub struct AwaitingAck {
    view: u64,
    round: u64,
}

impl AwaitingAck {
    /// The wire round whose checkpoint is in flight.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Consumes the wait on a frame from the backup.
    ///
    /// # Errors
    ///
    /// - [`NetError::Aborted`] when the frame is a
    ///   [`StageTag::ViewChange`]: the backup's lease expired and it
    ///   took over — this node is deposed and must stand down *without
    ///   committing* (the `Primary` value is destroyed, so it cannot).
    /// - [`NetError::Protocol`] on any other unexpected frame.
    pub fn complete(self, env: &Envelope) -> Result<Primary, NetError> {
        match env.stage {
            StageTag::CheckpointAck if env.round == self.round => Ok(Primary { view: self.view }),
            StageTag::CheckpointAck => Err(NetError::Protocol(format!(
                "checkpoint ack for round {} while round {} is in flight",
                env.round, self.round
            ))),
            StageTag::ViewChange => Err(NetError::Aborted(format!(
                "deposed by view change (view {})",
                env.round
            ))),
            other => Err(NetError::Protocol(format!(
                "unexpected {other:?} frame on the replication channel"
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Backup side.
// ---------------------------------------------------------------------

/// The backup role: installs checkpoints and acks them; promotes to
/// [`Candidate`] when its lease on the primary expires.
#[derive(Debug)]
pub struct Backup {
    view: u64,
    installed: Option<SessionCheckpoint>,
}

impl Backup {
    /// A fresh backup in view 0 with nothing installed.
    #[must_use]
    pub fn new() -> Backup {
        Backup {
            view: 0,
            installed: None,
        }
    }

    /// The last installed checkpoint, if any.
    #[must_use]
    pub fn installed(&self) -> Option<&SessionCheckpoint> {
        self.installed.as_ref()
    }

    /// Installs the checkpoint in `env` and acks it. The ack is emitted
    /// *by this transition* — there is no way to ack without installing
    /// first, so an acked round is always recoverable from this backup.
    ///
    /// # Errors
    ///
    /// [`NetError::Codec`] when the body does not decode (nothing is
    /// acked); channel errors from the ack send.
    pub fn install(self, env: &Envelope, chan: &mut dyn Channel) -> Result<Backup, NetError> {
        let ckpt = SessionCheckpoint::decode(&env.body)?;
        let ack = Envelope::new(StageTag::CheckpointAck, env.round, Vec::new());
        chan.send(&ack.encode())?;
        Ok(Backup {
            view: self.view.max(ckpt.view),
            installed: Some(ckpt),
        })
    }

    /// The lease expired: this backup becomes a takeover candidate.
    #[must_use]
    pub fn promote(self) -> Candidate {
        Candidate {
            view: self.view,
            installed: self.installed,
        }
    }
}

impl Default for Backup {
    fn default() -> Self {
        Backup::new()
    }
}

/// A promoted backup that has not yet announced its takeover.
#[derive(Debug)]
pub struct Candidate {
    view: u64,
    installed: Option<SessionCheckpoint>,
}

impl Candidate {
    /// Announces the view change (best effort — the old primary is
    /// usually dead, but if it is merely partitioned the frame is what
    /// destroys its `Primary` value) and assumes leadership.
    pub fn take_over(self, chan: &mut dyn Channel) -> Takeover {
        let view = self.view + 1;
        let env = Envelope::new(StageTag::ViewChange, view, Vec::new());
        let _ = chan.send(&env.encode()); // the primary being gone is the common case
        Takeover {
            view,
            checkpoint: self.installed,
        }
    }
}

/// The result of a takeover: the new view number and the state to
/// resume from (`None` when the primary died before any round
/// boundary — the successor starts the session from scratch).
#[derive(Debug)]
pub struct Takeover {
    /// The view the new primary leads.
    pub view: u64,
    /// The last installed round-boundary state.
    pub checkpoint: Option<SessionCheckpoint>,
}

/// How a backup's watch over the primary ended.
#[derive(Debug)]
pub enum BackupOutcome {
    /// The primary finished the session and retired cleanly; nothing to
    /// take over (the final checkpoint is returned for the record).
    SessionEnded(Option<SessionCheckpoint>),
    /// The lease expired or the connection died: this node is now the
    /// primary and must resume the session.
    Takeover(Takeover),
}

/// Runs the backup role to completion: installs and acks checkpoints,
/// renewing a `lease` on every frame; on lease expiry or disconnect,
/// promotes, announces the view change, and returns the takeover.
///
/// Emits `dordis_checkpoints_total{role="backup"}`, a
/// `dordis_checkpoint_bytes` histogram, and `dordis_view_changes_total`
/// on promotion.
///
/// # Errors
///
/// Propagates codec violations and ack-send failures (a backup that
/// cannot ack is useless — better to crash loudly than hold a lease it
/// cannot honor).
pub fn run_backup(
    chan: &mut dyn Channel,
    lease: Duration,
    telemetry: &Telemetry,
) -> Result<BackupOutcome, NetError> {
    let installs = telemetry.counter("dordis_checkpoints_total", &[("role", "backup")]);
    let ckpt_bytes = telemetry.histogram("dordis_checkpoint_bytes", &[]);
    let view_changes = telemetry.counter("dordis_view_changes_total", &[]);
    let mut backup = Backup::new();
    loop {
        match chan.recv_deadline(deadline_in(lease)) {
            Ok(frame) => {
                let env = Envelope::decode(&frame)?;
                match env.stage {
                    StageTag::CheckpointInstall => {
                        ckpt_bytes.observe(env.body.len() as u64);
                        backup = backup.install(&env, chan)?;
                        installs.inc();
                    }
                    StageTag::SessionEnd => {
                        return Ok(BackupOutcome::SessionEnded(backup.installed.take()));
                    }
                    other => {
                        return Err(NetError::Protocol(format!(
                            "unexpected {other:?} frame on the replication channel"
                        )));
                    }
                }
            }
            Err(NetError::Timeout) | Err(NetError::Closed) => {
                view_changes.inc();
                return Ok(BackupOutcome::Takeover(backup.promote().take_over(chan)));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackChannel;

    fn ckpt(round: u64) -> SessionCheckpoint {
        SessionCheckpoint {
            round,
            rounds_done: round,
            view: 0,
            parked: vec![1, 5, 9],
            app_state: vec![0xAB; 37],
        }
    }

    #[test]
    fn checkpoint_roundtrips() {
        for c in [
            ckpt(3),
            SessionCheckpoint {
                round: 0,
                rounds_done: 0,
                view: 7,
                parked: Vec::new(),
                app_state: Vec::new(),
            },
        ] {
            assert_eq!(SessionCheckpoint::decode(&c.encode()).unwrap(), c);
        }
    }

    #[test]
    fn truncated_checkpoint_rejected() {
        let body = ckpt(1).encode();
        for cut in [0, 7, 23, body.len() - 1] {
            assert!(SessionCheckpoint::decode(&body[..cut]).is_err());
        }
        let mut trailing = body.clone();
        trailing.push(0);
        assert!(SessionCheckpoint::decode(&trailing).is_err());
    }

    #[test]
    fn ship_install_ack_cycle() {
        let (mut p_chan, mut b_chan) = LoopbackChannel::pair("repl");
        let primary = Primary::new();
        let waiting = primary.ship(&ckpt(1), &mut p_chan).unwrap();
        assert_eq!(waiting.round(), 1);

        // Backup installs and acks in one typed transition.
        let frame = b_chan
            .recv_deadline(deadline_in(Duration::from_secs(1)))
            .unwrap();
        let env = Envelope::decode(&frame).unwrap();
        assert_eq!(env.stage, StageTag::CheckpointInstall);
        let backup = Backup::new().install(&env, &mut b_chan).unwrap();
        assert_eq!(backup.installed().unwrap().round, 1);

        // Primary completes against the ack and is a primary again.
        let frame = p_chan
            .recv_deadline(deadline_in(Duration::from_secs(1)))
            .unwrap();
        let primary = waiting
            .complete(&Envelope::decode(&frame).unwrap())
            .unwrap();
        assert_eq!(primary.view(), 0);
    }

    #[test]
    fn view_change_deposes_waiting_primary() {
        let (mut p_chan, mut b_chan) = LoopbackChannel::pair("depose");
        let waiting = Primary::new().ship(&ckpt(2), &mut p_chan).unwrap();
        // The backup never acks: it promotes and announces instead.
        let takeover = Backup::new().promote().take_over(&mut b_chan);
        assert_eq!(takeover.view, 1);
        let frame = p_chan
            .recv_deadline(deadline_in(Duration::from_secs(1)))
            .unwrap();
        let err = waiting
            .complete(&Envelope::decode(&frame).unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::Aborted(_)), "{err}");
    }

    #[test]
    fn mismatched_ack_round_is_a_protocol_error() {
        let (mut p_chan, _b) = LoopbackChannel::pair("mismatch");
        let waiting = Primary::new().ship(&ckpt(4), &mut p_chan).unwrap();
        let stale = Envelope::new(StageTag::CheckpointAck, 3, Vec::new());
        assert!(matches!(
            waiting.complete(&stale),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn run_backup_takes_over_on_disconnect_with_latest_state() {
        let (mut p_chan, mut b_chan) = LoopbackChannel::pair("takeover");
        let driver = std::thread::spawn(move || {
            let mut primary = Primary::new();
            for r in 1..=3u64 {
                let waiting = primary.ship(&ckpt(r), &mut p_chan).unwrap();
                let frame = p_chan
                    .recv_deadline(deadline_in(Duration::from_secs(5)))
                    .unwrap();
                primary = waiting
                    .complete(&Envelope::decode(&frame).unwrap())
                    .unwrap();
            }
            // Crash: drop the channel without retiring.
        });
        let telemetry = Telemetry::enabled();
        let outcome = run_backup(&mut b_chan, Duration::from_secs(5), &telemetry).unwrap();
        driver.join().unwrap();
        match outcome {
            BackupOutcome::Takeover(t) => {
                assert_eq!(t.view, 1);
                assert_eq!(t.checkpoint.unwrap().round, 3);
            }
            BackupOutcome::SessionEnded(_) => panic!("expected takeover"),
        }
    }

    #[test]
    fn run_backup_honors_clean_retirement() {
        let (mut p_chan, mut b_chan) = LoopbackChannel::pair("retire");
        let driver = std::thread::spawn(move || {
            let waiting = Primary::new().ship(&ckpt(1), &mut p_chan).unwrap();
            let frame = p_chan
                .recv_deadline(deadline_in(Duration::from_secs(5)))
                .unwrap();
            let primary = waiting
                .complete(&Envelope::decode(&frame).unwrap())
                .unwrap();
            primary.retire(&mut p_chan);
            p_chan // hold the channel open past the SessionEnd send
        });
        let outcome =
            run_backup(&mut b_chan, Duration::from_secs(5), &Telemetry::disabled()).unwrap();
        drop(driver.join().unwrap());
        match outcome {
            BackupOutcome::SessionEnded(ckpt) => {
                assert_eq!(ckpt.unwrap().round, 1);
            }
            BackupOutcome::Takeover(_) => panic!("expected clean end"),
        }
    }

    #[test]
    fn run_backup_takes_over_on_lease_expiry() {
        let (p_chan, mut b_chan) = LoopbackChannel::pair("lease");
        // Primary alive but silent: the lease must expire.
        let outcome = run_backup(
            &mut b_chan,
            Duration::from_millis(50),
            &Telemetry::disabled(),
        )
        .unwrap();
        match outcome {
            BackupOutcome::Takeover(t) => {
                assert_eq!(t.view, 1);
                assert!(t.checkpoint.is_none());
            }
            BackupOutcome::SessionEnded(_) => panic!("expected takeover"),
        }
        drop(p_chan);
    }
}
