//! The wire codec: length-delimited binary encodings for every protocol
//! message, plus the framed [`Envelope`] that carries them.
//!
//! Layout conventions: all integers are little-endian; collections carry
//! explicit counts; Shamir shares encode as `x u8, len u8, y`. Message
//! *bodies* encode exactly [`WireSize::wire_bytes`] bytes — the
//! `wire_size_agreement` test in this crate pins that equality for every
//! message type, because those sizes feed the paper's Figure 2/10
//! communication cost model. List framing and the envelope header are
//! transport overhead on top, accounted separately.
//!
//! Two messages decode *contextually*: [`MaskedInput`] is bit-packed at
//! `b` bits per coordinate, so the decoder needs the round's
//! `(bit_width, vector_len)` — both sides know them from [`RoundParams`],
//! which is how the paper's system avoids paying a per-message header
//! for static round state.

use dordis_crypto::ed25519::Signature;
use dordis_crypto::prg::Seed;
use dordis_crypto::shamir::Share;
use dordis_pipeline::ChunkPlan;
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::messages::{
    AdvertisedKeys, ConsistencySignature, EncryptedShares, IdList, MaskedInput, NoiseShareResponse,
    UnmaskingResponse,
};
use dordis_secagg::{ClientId, RoundParams, ThreatModel};

use crate::NetError;

/// Wire protocol version; bumped on any incompatible layout change.
/// v2: the envelope header gained a `chunk u16` field and masked inputs
/// travel as one frame per [`ChunkPlan`] chunk.
/// v3: multi-round sessions — three session-control stages
/// ([`StageTag::RoundAnnounce`], [`StageTag::Decline`],
/// [`StageTag::SessionEnd`]), Join bodies may carry a participation
/// claim after the client id, and Setup bodies carry an opaque
/// application payload (e.g. the current global model) after the chunk
/// count.
/// v4: sharded coordinators — Setup bodies carry the *union* cohort
/// size (`cohort u16`) between the chunk count and the payload, so a
/// client seated in one aggregation shard still derives its XNoise
/// plan and encoding from the full sampled cohort, not the shard
/// roster in `RoundParams::clients`.
/// v5: coordinator replication — three replication-control stages
/// ([`StageTag::CheckpointInstall`], [`StageTag::CheckpointAck`],
/// [`StageTag::ViewChange`]) carry round-boundary session checkpoints
/// from a primary coordinator to its backup and signal view changes
/// after a failover.
pub const WIRE_VERSION: u8 = 5;

/// Envelope header bytes: version, stage, round, chunk.
pub const HEADER_BYTES: usize = 1 + 1 + 8 + 2;

/// Maximum accepted frame size (64 MiB) — guards against garbage length
/// prefixes from misbehaving peers.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Protocol stage carried in the envelope header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum StageTag {
    /// Client → server: claim a seat in the round.
    Join = 0,
    /// Server → client: the round parameters.
    Setup = 1,
    /// Client → server: key advertisement (stage 0).
    AdvertiseKeys = 2,
    /// Server → client: the U1 roster broadcast.
    Roster = 3,
    /// Client → server: encrypted share bundles (stage 1).
    ShareKeys = 4,
    /// Server → client: ciphertexts routed to this client.
    Inbox = 5,
    /// Client → server: the masked input (stage 2).
    MaskedInput = 6,
    /// Server → client: the U3 survivor broadcast.
    SurvivorSet = 7,
    /// Client → server: consistency signature (stage 3, malicious).
    ConsistencySig = 8,
    /// Server → client: the {(v, ω'_v)} signature list (U4).
    SignatureList = 9,
    /// Client → server: unmasking response (stage 4).
    Unmasking = 10,
    /// Server → client: the U5 broadcast requesting noise shares.
    ReadySet = 11,
    /// Client → server: noise-seed shares (stage 5).
    NoiseShares = 12,
    /// Server → client: round complete; body is the survivor set.
    Finished = 13,
    /// Either direction: the sender is aborting, with a reason.
    Abort = 14,
    /// Server → client: a new session round is opening; answer with
    /// [`StageTag::Join`] (with a claim when required) or
    /// [`StageTag::Decline`].
    RoundAnnounce = 15,
    /// Client → server: not participating in the announced round (e.g.
    /// the VRF said no); the connection stays open for later rounds.
    Decline = 16,
    /// Server → client: the session is over; close the connection.
    SessionEnd = 17,
    /// Primary → backup: a round-boundary session checkpoint; the body
    /// is a serialized `net::replication::SessionCheckpoint`. The
    /// envelope round is the checkpointed round id.
    CheckpointInstall = 18,
    /// Backup → primary: the checkpoint for the envelope round is
    /// durably installed; the primary may now commit the round.
    CheckpointAck = 19,
    /// Candidate → old primary (best effort): the backup's lease on the
    /// primary expired and it is taking over; the envelope round is the
    /// new view number. A primary that receives this must stand down.
    ViewChange = 20,
}

impl StageTag {
    /// Parses the tag byte.
    #[must_use]
    pub fn from_u8(b: u8) -> Option<StageTag> {
        use StageTag::*;
        Some(match b {
            0 => Join,
            1 => Setup,
            2 => AdvertiseKeys,
            3 => Roster,
            4 => ShareKeys,
            5 => Inbox,
            6 => MaskedInput,
            7 => SurvivorSet,
            8 => ConsistencySig,
            9 => SignatureList,
            10 => Unmasking,
            11 => ReadySet,
            12 => NoiseShares,
            13 => Finished,
            14 => Abort,
            15 => RoundAnnounce,
            16 => Decline,
            17 => SessionEnd,
            18 => CheckpointInstall,
            19 => CheckpointAck,
            20 => ViewChange,
            _ => return None,
        })
    }
}

/// A framed protocol message: version, stage, round id, chunk id, opaque
/// body. The chunk id is 0 for every control-plane message; data-plane
/// masked-input frames carry their [`ChunkPlan`] chunk index so stage
/// `k` of chunk `c+1` can overlap stage `k+1` of chunk `c` on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Wire version ([`WIRE_VERSION`]).
    pub version: u8,
    /// Stage discriminator for the body.
    pub stage: StageTag,
    /// Round the message belongs to (replay/mix-up protection).
    pub round: u64,
    /// Chunk the body belongs to (0 for unchunked stages).
    pub chunk: u16,
    /// Encoded message body.
    pub body: Vec<u8>,
}

/// The (stage, round, chunk) coordinates of a frame — threaded into
/// body-decode errors so a dropout report says *which* frame of *which*
/// chunk went wrong, not just how many bytes were expected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameContext {
    /// Stage tag from the envelope header.
    pub stage: StageTag,
    /// Round id from the envelope header.
    pub round: u64,
    /// Chunk id from the envelope header.
    pub chunk: u16,
}

impl core::fmt::Display for FrameContext {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "stage {:?} round {} chunk {}",
            self.stage, self.round, self.chunk
        )
    }
}

impl Envelope {
    /// Wraps a body for the current wire version (chunk 0).
    #[must_use]
    pub fn new(stage: StageTag, round: u64, body: Vec<u8>) -> Envelope {
        Envelope::chunked(stage, round, 0, body)
    }

    /// Wraps one chunk's body for the current wire version.
    #[must_use]
    pub fn chunked(stage: StageTag, round: u64, chunk: u16, body: Vec<u8>) -> Envelope {
        Envelope {
            version: WIRE_VERSION,
            stage,
            round,
            chunk,
            body,
        }
    }

    /// The frame's (stage, round, chunk) coordinates for error context.
    #[must_use]
    pub fn context(&self) -> FrameContext {
        FrameContext {
            stage: self.stage,
            round: self.round,
            chunk: self.chunk,
        }
    }

    /// Serializes header + body into one frame.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.body.len());
        out.push(self.version);
        out.push(self.stage as u8);
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&self.chunk.to_le_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Checks the frame's round id against the round a state machine is
    /// executing. `Abort` frames pass regardless (they are round-free by
    /// construction: a peer may abort with stale state).
    ///
    /// # Errors
    ///
    /// [`NetError::StaleRound`] on any mismatch, so a leftover frame
    /// from round `r` can never be parsed into round `r + 1`'s state.
    pub fn check_round(&self, expected: u64) -> Result<(), NetError> {
        if self.round == expected || self.stage == StageTag::Abort {
            Ok(())
        } else {
            Err(NetError::StaleRound {
                got: self.round,
                expected,
            })
        }
    }

    /// Parses a frame.
    ///
    /// # Errors
    ///
    /// Rejects short frames, unknown stage tags, and — with the typed
    /// [`NetError::Version`] — mismatched protocol versions.
    pub fn decode(frame: &[u8]) -> Result<Envelope, NetError> {
        if frame.is_empty() {
            return Err(NetError::Codec("empty frame".into()));
        }
        // Version is checked before the length so a short v1 frame is
        // reported as the version mismatch it is.
        let version = frame[0];
        if version != WIRE_VERSION {
            return Err(NetError::Version {
                got: version,
                expected: WIRE_VERSION,
            });
        }
        if frame.len() < HEADER_BYTES {
            return Err(NetError::Codec(format!("frame too short: {}", frame.len())));
        }
        let stage = StageTag::from_u8(frame[1])
            .ok_or_else(|| NetError::Codec(format!("unknown stage tag {}", frame[1])))?;
        let round = u64::from_le_bytes(frame[2..10].try_into().expect("8 bytes"));
        let chunk = u16::from_le_bytes(frame[10..12].try_into().expect("2 bytes"));
        Ok(Envelope {
            version,
            stage,
            round,
            chunk,
            body: frame[HEADER_BYTES..].to_vec(),
        })
    }
}

/// A zero-copy view of a framed message: same header parse as
/// [`Envelope::decode`], but the body *borrows* the frame buffer
/// instead of cloning it. The data plane uses this to steal whole
/// masked-input frames (decoding the bit-packed payload straight out of
/// the frame at `frame[HEADER_BYTES..]`) so the per-chunk body copy
/// never happens; the frame itself is recycled to its channel once the
/// chunk is aggregated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnvelopeView<'a> {
    /// Wire version ([`WIRE_VERSION`]).
    pub version: u8,
    /// Stage discriminator for the body.
    pub stage: StageTag,
    /// Round the message belongs to (replay/mix-up protection).
    pub round: u64,
    /// Chunk the body belongs to (0 for unchunked stages).
    pub chunk: u16,
    /// Encoded message body, borrowed from the frame.
    pub body: &'a [u8],
}

impl<'a> EnvelopeView<'a> {
    /// Parses a frame without copying the body.
    ///
    /// # Errors
    ///
    /// Rejects exactly what [`Envelope::decode`] rejects: short frames,
    /// unknown stage tags, and mismatched protocol versions.
    pub fn decode(frame: &'a [u8]) -> Result<EnvelopeView<'a>, NetError> {
        if frame.is_empty() {
            return Err(NetError::Codec("empty frame".into()));
        }
        let version = frame[0];
        if version != WIRE_VERSION {
            return Err(NetError::Version {
                got: version,
                expected: WIRE_VERSION,
            });
        }
        if frame.len() < HEADER_BYTES {
            return Err(NetError::Codec(format!("frame too short: {}", frame.len())));
        }
        let stage = StageTag::from_u8(frame[1])
            .ok_or_else(|| NetError::Codec(format!("unknown stage tag {}", frame[1])))?;
        let round = u64::from_le_bytes(frame[2..10].try_into().expect("8 bytes"));
        let chunk = u16::from_le_bytes(frame[10..12].try_into().expect("2 bytes"));
        Ok(EnvelopeView {
            version,
            stage,
            round,
            chunk,
            body: &frame[HEADER_BYTES..],
        })
    }

    /// The frame's (stage, round, chunk) coordinates for error context.
    #[must_use]
    pub fn context(&self) -> FrameContext {
        FrameContext {
            stage: self.stage,
            round: self.round,
            chunk: self.chunk,
        }
    }
}

// ---------------------------------------------------------------------
// Cursor.
// ---------------------------------------------------------------------

/// Little-endian read cursor over a body slice.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.pos + n > self.bytes.len() {
            return Err(NetError::Codec(format!(
                "truncated body: wanted {n} at offset {}, have {}",
                self.pos,
                self.bytes.len()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, NetError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn seed(&mut self) -> Result<Seed, NetError> {
        Ok(self.take(32)?.try_into().expect("32"))
    }

    fn share(&mut self) -> Result<Share, NetError> {
        let x = self.u8()?;
        let len = self.u8()? as usize;
        Ok(Share {
            x,
            y: self.take(len)?.to_vec(),
        })
    }

    fn finish(&self) -> Result<(), NetError> {
        if self.pos != self.bytes.len() {
            return Err(NetError::Codec(format!(
                "{} trailing bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

fn put_share(out: &mut Vec<u8>, s: &Share) {
    debug_assert!(s.y.len() <= u8::MAX as usize, "share too long for wire");
    out.push(s.x);
    out.push(s.y.len() as u8);
    out.extend_from_slice(&s.y);
}

// ---------------------------------------------------------------------
// Message bodies.
// ---------------------------------------------------------------------

/// Types with a canonical body encoding.
pub trait Encode {
    /// Appends the encoded body to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// The encoded body as a fresh buffer.
    fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

impl Encode for AdvertisedKeys {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.client.to_le_bytes());
        out.extend_from_slice(&self.c_pk);
        out.extend_from_slice(&self.s_pk);
        if let Some(sig) = &self.signature {
            out.extend_from_slice(&sig.0);
        }
    }
}

/// Decodes an [`AdvertisedKeys`] body; signature presence is determined
/// by length (68 without, 132 with), keeping the body flag-free.
///
/// # Errors
///
/// Rejects any other length.
pub fn decode_advertised_keys(body: &[u8]) -> Result<AdvertisedKeys, NetError> {
    let mut r = Reader::new(body);
    let client = r.u32()?;
    let c_pk: [u8; 32] = r.take(32)?.try_into().expect("32");
    let s_pk: [u8; 32] = r.take(32)?.try_into().expect("32");
    let signature = match r.remaining() {
        0 => None,
        64 => Some(Signature(r.take(64)?.try_into().expect("64"))),
        n => return Err(NetError::Codec(format!("bad AdvertisedKeys tail: {n}"))),
    };
    r.finish()?;
    Ok(AdvertisedKeys {
        client,
        c_pk,
        s_pk,
        signature,
    })
}

impl Encode for EncryptedShares {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.from.to_le_bytes());
        out.extend_from_slice(&self.to.to_le_bytes());
        out.extend_from_slice(&self.ciphertext);
    }
}

/// Decodes an [`EncryptedShares`] body (the ciphertext is the tail).
///
/// # Errors
///
/// Rejects bodies shorter than the 8-byte addressing header.
pub fn decode_encrypted_shares(body: &[u8]) -> Result<EncryptedShares, NetError> {
    let mut r = Reader::new(body);
    let from = r.u32()?;
    let to = r.u32()?;
    let ciphertext = r.take(r.remaining())?.to_vec();
    Ok(EncryptedShares {
        from,
        to,
        ciphertext,
    })
}

impl Encode for MaskedInput {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.client.to_le_bytes());
        // Pack each coordinate at `bit_width` bits, LSB first.
        let b = self.bit_width;
        debug_assert!((1..=62).contains(&b));
        let mask = (1u64 << b) - 1;
        let mut acc: u128 = 0;
        let mut nbits: u32 = 0;
        for &v in &self.vector {
            acc |= u128::from(v & mask) << nbits;
            nbits += b;
            while nbits >= 8 {
                out.push((acc & 0xff) as u8);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            out.push((acc & 0xff) as u8);
        }
    }
}

/// Decodes a bit-packed [`MaskedInput`] body. The packing parameters are
/// round state, not per-message headers, so they are passed in;
/// `vector_len` is the element count of the frame's chunk (the full
/// vector for a single-chunk plan). `ctx` is the envelope's (stage,
/// round, chunk), threaded into errors so dropout reports are
/// attributable.
///
/// # Errors
///
/// Rejects bodies whose length disagrees with `vector_len * bit_width`.
pub fn decode_masked_input(
    body: &[u8],
    bit_width: u32,
    vector_len: usize,
    ctx: FrameContext,
) -> Result<MaskedInput, NetError> {
    let mut r = Reader::new(body);
    let client = r.u32().map_err(|e| with_context(e, ctx))?;
    let expect = (vector_len as u64 * u64::from(bit_width)).div_ceil(8) as usize;
    if r.remaining() != expect {
        return Err(NetError::Codec(format!(
            "MaskedInput payload {} bytes, expected {expect} ({ctx}, client {client})",
            r.remaining()
        )));
    }
    let packed = r.take(expect)?;
    let mut vector = Vec::with_capacity(vector_len);
    let mut acc: u128 = 0;
    let mut nbits: u32 = 0;
    let mut next = packed.iter();
    for _ in 0..vector_len {
        while nbits < bit_width {
            acc |= u128::from(*next.next().expect("length checked")) << nbits;
            nbits += 8;
        }
        let mask = (1u128 << bit_width) - 1;
        vector.push((acc & mask) as u64);
        acc >>= bit_width;
        nbits -= bit_width;
    }
    Ok(MaskedInput {
        client,
        vector,
        bit_width,
    })
}

/// Annotates a codec error with its frame coordinates.
fn with_context(e: NetError, ctx: FrameContext) -> NetError {
    match e {
        NetError::Codec(msg) => NetError::Codec(format!("{msg} ({ctx})")),
        other => other,
    }
}

// ---------------------------------------------------------------------
// Chunked masked-input framing.
// ---------------------------------------------------------------------

/// Splits a full masked input into one [`MaskedInput`] per chunk of
/// `plan`, in schedule order. Because the plan's boundaries are
/// byte-aligned for the round's bit width, each chunk's bit-packed body
/// payload is exactly the corresponding byte-slice of the single-frame
/// packing: the summed chunk payloads are byte-equal to the single-frame
/// accounting (`Σ_c payload_c == payload`), with only the repeated
/// 4-byte sender id and the envelope headers as per-chunk transport
/// overhead — the `chunk_payloads_partition_single_frame` test in this
/// crate pins that equality.
///
/// # Errors
///
/// Rejects inputs whose length or bit width disagree with the plan.
pub fn split_masked_input(
    input: &MaskedInput,
    plan: &ChunkPlan,
) -> Result<Vec<MaskedInput>, NetError> {
    if input.bit_width != plan.bit_width() {
        return Err(NetError::Codec(format!(
            "masked input bit width {} disagrees with chunk plan {}",
            input.bit_width,
            plan.bit_width()
        )));
    }
    let pieces = plan
        .split(&input.vector)
        .map_err(|e| NetError::Codec(format!("split masked input: {e}")))?;
    Ok(pieces
        .into_iter()
        .map(|piece| MaskedInput {
            client: input.client,
            vector: piece.to_vec(),
            bit_width: input.bit_width,
        })
        .collect())
}

/// Reassembles per-chunk masked inputs (in schedule order) into the full
/// vector — the inverse of [`split_masked_input`].
///
/// # Errors
///
/// Rejects mixed senders or bit widths, and piece lengths that disagree
/// with the plan.
pub fn reassemble_masked_input(
    chunks: &[MaskedInput],
    plan: &ChunkPlan,
) -> Result<MaskedInput, NetError> {
    let first = chunks
        .first()
        .ok_or_else(|| NetError::Codec("no chunks to reassemble".into()))?;
    for c in chunks {
        if c.client != first.client || c.bit_width != first.bit_width {
            return Err(NetError::Codec(format!(
                "chunk stream mixes senders/bit widths: ({}, {}) vs ({}, {})",
                c.client, c.bit_width, first.client, first.bit_width
            )));
        }
    }
    let pieces: Vec<Vec<u64>> = chunks.iter().map(|c| c.vector.clone()).collect();
    let vector = plan
        .reassemble(&pieces)
        .map_err(|e| NetError::Codec(format!("reassemble masked input: {e}")))?;
    Ok(MaskedInput {
        client: first.client,
        vector,
        bit_width: first.bit_width,
    })
}

impl Encode for ConsistencySignature {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.client.to_le_bytes());
        out.extend_from_slice(&self.signature.0);
    }
}

/// Decodes a [`ConsistencySignature`] body.
///
/// # Errors
///
/// Rejects bodies that are not exactly 68 bytes.
pub fn decode_consistency_signature(body: &[u8]) -> Result<ConsistencySignature, NetError> {
    let mut r = Reader::new(body);
    let client = r.u32()?;
    let signature = Signature(r.take(64)?.try_into().expect("64"));
    r.finish()?;
    Ok(ConsistencySignature { client, signature })
}

impl Encode for UnmaskingResponse {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.client.to_le_bytes());
        out.extend_from_slice(&(self.sk_shares.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.b_shares.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.own_seeds.len() as u16).to_le_bytes());
        for (owner, share) in self.sk_shares.iter().chain(self.b_shares.iter()) {
            out.extend_from_slice(&owner.to_le_bytes());
            put_share(out, share);
        }
        for (k, seed) in &self.own_seeds {
            out.extend_from_slice(&(*k as u16).to_le_bytes());
            out.extend_from_slice(seed);
        }
    }
}

/// Decodes an [`UnmaskingResponse`] body.
///
/// # Errors
///
/// Rejects truncated or over-long bodies.
pub fn decode_unmasking_response(body: &[u8]) -> Result<UnmaskingResponse, NetError> {
    let mut r = Reader::new(body);
    let client = r.u32()?;
    let n_sk = r.u16()? as usize;
    let n_b = r.u16()? as usize;
    let n_seed = r.u16()? as usize;
    let mut sk_shares = Vec::with_capacity(n_sk);
    for _ in 0..n_sk {
        let owner = r.u32()?;
        sk_shares.push((owner, r.share()?));
    }
    let mut b_shares = Vec::with_capacity(n_b);
    for _ in 0..n_b {
        let owner = r.u32()?;
        b_shares.push((owner, r.share()?));
    }
    let mut own_seeds = Vec::with_capacity(n_seed);
    for _ in 0..n_seed {
        let k = r.u16()? as usize;
        own_seeds.push((k, r.seed()?));
    }
    r.finish()?;
    Ok(UnmaskingResponse {
        client,
        sk_shares,
        b_shares,
        own_seeds,
    })
}

impl Encode for NoiseShareResponse {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.client.to_le_bytes());
        out.extend_from_slice(&(self.seed_shares.len() as u16).to_le_bytes());
        for (owner, k, share) in &self.seed_shares {
            out.extend_from_slice(&owner.to_le_bytes());
            out.extend_from_slice(&(*k as u16).to_le_bytes());
            put_share(out, share);
        }
    }
}

/// Decodes a [`NoiseShareResponse`] body.
///
/// # Errors
///
/// Rejects truncated or over-long bodies.
pub fn decode_noise_share_response(body: &[u8]) -> Result<NoiseShareResponse, NetError> {
    let mut r = Reader::new(body);
    let client = r.u32()?;
    let n = r.u16()? as usize;
    let mut seed_shares = Vec::with_capacity(n);
    for _ in 0..n {
        let owner = r.u32()?;
        let k = r.u16()? as usize;
        seed_shares.push((owner, k, r.share()?));
    }
    r.finish()?;
    Ok(NoiseShareResponse {
        client,
        seed_shares,
    })
}

impl Encode for IdList {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.0.len() as u32).to_le_bytes());
        for id in &self.0 {
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
}

/// Decodes an [`IdList`] body.
///
/// # Errors
///
/// Rejects count/length mismatches.
pub fn decode_id_list(body: &[u8]) -> Result<IdList, NetError> {
    let mut r = Reader::new(body);
    let n = r.u32()? as usize;
    // The count is wire-controlled: bound it by the actual payload
    // before allocating.
    if n * 4 != r.remaining() {
        return Err(NetError::Codec(format!(
            "IdList count {n} disagrees with {} payload bytes",
            r.remaining()
        )));
    }
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(r.u32()?);
    }
    r.finish()?;
    Ok(IdList(ids))
}

// ---------------------------------------------------------------------
// List framing (batched bodies).
// ---------------------------------------------------------------------

/// Encodes a batch of message bodies: `count u16`, then each body with a
/// `u32` length prefix.
pub fn encode_list<T: Encode>(items: &[T]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(items.len() as u16).to_le_bytes());
    for item in items {
        let body = item.encoded();
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
    }
    out
}

/// Decodes a batch produced by [`encode_list`].
///
/// # Errors
///
/// Propagates item decode failures; rejects framing mismatches.
pub fn decode_list<T>(
    body: &[u8],
    decode_item: impl Fn(&[u8]) -> Result<T, NetError>,
) -> Result<Vec<T>, NetError> {
    let mut r = Reader::new(body);
    let n = r.u16()? as usize;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.u32()? as usize;
        if len > MAX_FRAME_BYTES {
            return Err(NetError::Codec(format!("oversized list item: {len}")));
        }
        items.push(decode_item(r.take(len)?)?);
    }
    r.finish()?;
    Ok(items)
}

// ---------------------------------------------------------------------
// Control payloads (Join / Setup / SignatureList / Abort).
// ---------------------------------------------------------------------

/// Encodes a Join body: the claimed client id.
#[must_use]
pub fn encode_join(client: ClientId) -> Vec<u8> {
    client.to_le_bytes().to_vec()
}

/// Decodes a Join body.
///
/// # Errors
///
/// Rejects bodies that are not exactly 4 bytes.
pub fn decode_join(body: &[u8]) -> Result<ClientId, NetError> {
    let mut r = Reader::new(body);
    let id = r.u32()?;
    r.finish()?;
    Ok(id)
}

/// Encodes a Join body carrying a participation claim: the client id
/// followed by the opaque claim bytes (the coordinator hands them to the
/// session's seating verifier — `dordis-net` never interprets them).
#[must_use]
pub fn encode_join_claim(client: ClientId, claim: &[u8]) -> Vec<u8> {
    let mut out = encode_join(client);
    out.extend_from_slice(claim);
    out
}

/// Decodes a Join body into the claimed id and the (possibly empty)
/// claim tail.
///
/// # Errors
///
/// Rejects bodies shorter than the 4-byte id.
pub fn decode_join_claim(body: &[u8]) -> Result<(ClientId, Vec<u8>), NetError> {
    let mut r = Reader::new(body);
    let id = r.u32()?;
    let claim = r.take(r.remaining())?.to_vec();
    Ok((id, claim))
}

/// Encodes a RoundAnnounce body: whether the round requires a
/// participation claim (versus a plain roster join).
#[must_use]
pub fn encode_announce(claims_required: bool) -> Vec<u8> {
    vec![u8::from(claims_required)]
}

/// Decodes a RoundAnnounce body.
///
/// # Errors
///
/// Rejects bodies that are not exactly one flag byte.
pub fn decode_announce(body: &[u8]) -> Result<bool, NetError> {
    let mut r = Reader::new(body);
    let flag = r.u8()?;
    r.finish()?;
    match flag {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(NetError::Codec(format!("bad announce flag {other}"))),
    }
}

/// Encodes the Setup body: the full [`RoundParams`].
#[must_use]
pub fn encode_params(p: &RoundParams) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&p.round.to_le_bytes());
    out.extend_from_slice(&(p.clients.len() as u16).to_le_bytes());
    for id in &p.clients {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out.extend_from_slice(&(p.threshold as u32).to_le_bytes());
    out.push(p.bit_width as u8);
    out.extend_from_slice(&(p.vector_len as u32).to_le_bytes());
    out.extend_from_slice(&(p.noise_components as u16).to_le_bytes());
    out.push(match p.threat_model {
        ThreatModel::SemiHonest => 0,
        ThreatModel::Malicious => 1,
    });
    match p.graph {
        MaskingGraph::Complete => out.push(0),
        MaskingGraph::Harary { half_degree } => {
            out.push(1);
            out.extend_from_slice(&(half_degree as u32).to_le_bytes());
        }
    }
    out
}

/// Encodes the full Setup body: the [`RoundParams`], the round's
/// **requested** chunk count, the *union* cohort size, and an opaque
/// application payload (e.g. the session's current global model; empty
/// for plain rounds). Both sides re-derive the identical [`ChunkPlan`]
/// by calling `ChunkPlan::aligned` with this count and the round's
/// (vector_len, bit_width) — the requested count travels, not the
/// realized bounds, so alignment clamping cannot diverge between
/// coordinator and clients. The cohort size is the full sampled cohort
/// across every aggregation shard (equal to `p.clients.len()` for
/// unsharded rounds): XNoise planning and update encoding key off it,
/// not the shard roster.
#[must_use]
pub fn encode_setup(p: &RoundParams, chunks: u16, cohort: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = encode_params(p);
    out.extend_from_slice(&chunks.to_le_bytes());
    out.extend_from_slice(&cohort.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes a Setup body into the round parameters, the requested chunk
/// count, the union cohort size, and the application payload tail.
///
/// # Errors
///
/// Rejects malformed bodies and unknown tags.
pub fn decode_setup(body: &[u8]) -> Result<(RoundParams, u16, u16, Vec<u8>), NetError> {
    let mut r = Reader::new(body);
    let params = decode_params_fields(&mut r)?;
    let chunks = r.u16()?;
    let cohort = r.u16()?;
    let payload = r.take(r.remaining())?.to_vec();
    Ok((params, chunks, cohort, payload))
}

/// Decodes a params-only body (no chunk count; see [`decode_setup`] for
/// the Setup wire format).
///
/// # Errors
///
/// Rejects malformed bodies and unknown tags.
pub fn decode_params(body: &[u8]) -> Result<RoundParams, NetError> {
    let mut r = Reader::new(body);
    let params = decode_params_fields(&mut r)?;
    r.finish()?;
    Ok(params)
}

fn decode_params_fields(r: &mut Reader<'_>) -> Result<RoundParams, NetError> {
    let round = r.u64()?;
    let n = r.u16()? as usize;
    let mut clients = Vec::with_capacity(n);
    for _ in 0..n {
        clients.push(r.u32()?);
    }
    let threshold = r.u32()? as usize;
    let bit_width = u32::from(r.u8()?);
    let vector_len = r.u32()? as usize;
    let noise_components = r.u16()? as usize;
    let threat_model = match r.u8()? {
        0 => ThreatModel::SemiHonest,
        1 => ThreatModel::Malicious,
        t => return Err(NetError::Codec(format!("unknown threat model {t}"))),
    };
    let graph = match r.u8()? {
        0 => MaskingGraph::Complete,
        1 => MaskingGraph::Harary {
            half_degree: r.u32()? as usize,
        },
        t => return Err(NetError::Codec(format!("unknown graph tag {t}"))),
    };
    Ok(RoundParams {
        round,
        clients,
        threshold,
        bit_width,
        vector_len,
        noise_components,
        threat_model,
        graph,
    })
}

/// Encodes the SignatureList body: `count u16`, then `(client u32, sig)`.
#[must_use]
pub fn encode_signature_list(sigs: &[(ClientId, Signature)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(sigs.len() as u16).to_le_bytes());
    for (id, sig) in sigs {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&sig.0);
    }
    out
}

/// Decodes a SignatureList body.
///
/// # Errors
///
/// Rejects framing mismatches.
pub fn decode_signature_list(body: &[u8]) -> Result<Vec<(ClientId, Signature)>, NetError> {
    let mut r = Reader::new(body);
    let n = r.u16()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.u32()?;
        out.push((id, Signature(r.take(64)?.try_into().expect("64"))));
    }
    r.finish()?;
    Ok(out)
}

/// Encodes an Abort body (UTF-8 reason).
#[must_use]
pub fn encode_abort(reason: &str) -> Vec<u8> {
    reason.as_bytes().to_vec()
}

/// Decodes an Abort body.
#[must_use]
pub fn decode_abort(body: &[u8]) -> String {
    String::from_utf8_lossy(body).into_owned()
}
