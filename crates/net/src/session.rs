//! Multi-round FL sessions over persistent connections.
//!
//! `dordis serve` used to run exactly one networked round and exit; a
//! *session* makes the round a repeated unit of execution, the way the
//! paper's training experiments (Figures 1, 8, 9, Table 2) actually run:
//! many SecAgg+XNoise rounds back to back, each with a freshly sampled
//! cohort, over connections that stay warm between rounds.
//!
//! A [`Session`] owns what outlives a round:
//!
//! - the collection engine (one [`Reactor`] serving every round's
//!   timers and channels, or the legacy poll sweep),
//! - the *parked* connections: every authenticated client channel,
//!   registered once and kept across rounds,
//! - the round counter stamped into every envelope, and
//! - the seating policy deciding who participates in each round.
//!
//! Everything per-round lives in a fresh
//! [`RoundMachine`](crate::coordinator::RoundMachine) (secagg server,
//! chunk plan, traffic/dropout accounting), so no protocol state can
//! leak between rounds, and a frame carrying an old round id is
//! discarded by the typed [`NetError::StaleRound`] check instead of
//! being parsed into the current round.
//!
//! ## Round lifecycle
//!
//! 1. **Announce** (`announce: true`): the session broadcasts
//!    [`StageTag::RoundAnnounce`] with the new round id to every parked
//!    connection, and to every newly accepted one.
//! 2. **Join / claim**: each client answers with [`StageTag::Join`] —
//!    carrying a participation claim when the seating policy is
//!    [`Seating::Claims`] — or [`StageTag::Decline`]. New connections
//!    (first-time joiners *and* clients re-joining after dropping out of
//!    an earlier round) are accepted throughout the join window. The
//!    window closes early once every id in
//!    [`SessionConfig::population`] has answered.
//! 3. **Seating**: under [`Seating::Roster`] the cohort is the fixed
//!    `params.clients` roster (first-come joins, as in the single-round
//!    coordinator). Under [`Seating::Claims`] the collected claims go to
//!    the verifier — for Dordis, `dordis-core`'s VRF
//!    `verify_and_trim` (§7) — which seats a cohort and rejects forged
//!    claims; valid-but-trimmed claimants stay parked for the next
//!    round.
//! 4. **Round execution**: a fresh `RoundMachine` drives the seated
//!    cohort's connections through the SecAgg stages. Survivors'
//!    channels return to the parked set; detected dropouts' channels are
//!    gone — those clients can reconnect and re-join in a later round.
//! 5. After the last round, [`Session::finish`] broadcasts
//!    [`StageTag::SessionEnd`].
//!
//! ## Sharded rounds
//!
//! With [`SessionConfig::shards`] `S > 1` the seated cohort is
//! partitioned by [`shard_of`] (a hash of the client id) into `S`
//! rosters, each hosting its own [`RoundMachine`] — fresh secagg
//! server, fresh chunk plan — on its own thread, with its own reactor
//! under [`CollectMode::Reactor`]. Join, seating, and the parked set
//! stay global; only the aggregation data plane fans out. Afterwards
//! the per-shard outcomes merge: chunk sums add element-wise in
//! `Z_{2^b}`, survivor sets union (sorted, exactly as the unsharded
//! server reports them), and dropped clients are recomputed against
//! the *union* cohort in cohort order — so a sharded round is
//! bit-equal to the unsharded one over the same cohort and inputs.
//!
//! Two invariants keep the XNoise privacy ledger honest under
//! sharding. Every Setup frame carries the *union* cohort size (wire
//! v4), so clients derive their noise plan from the full sampled
//! cohort, never their shard roster; and each shard keeps the union's
//! `noise_components`, so its removal-seed reconstruction covers a
//! superset of the union removal range — downstream excess-noise
//! removal keys off the union dropout count and ignores the extras.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dordis_secagg::driver::RoundStats;
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::server::{merge_shard_outcomes, RoundOutcome};
use dordis_secagg::{ClientId, RoundParams};
use dordis_telemetry::Telemetry;

use crate::codec::{self, Envelope, StageTag};
use crate::compute::ComputePlane;
use crate::coordinator::{
    client_of, client_token, CollectMode, CoordinatorConfig, NetRoundReport, Peers, RoundMachine,
    JOIN_BASE,
};
use crate::faults::FaultPlan;
use crate::reactor::{EventedChannel, Reactor, ReactorStats, Token};
use crate::replication::{Primary, SessionCheckpoint};
use crate::transport::{recv_env, send_env, wire_message, Acceptor};
use crate::NetError;

/// Who a round's seating verifier admitted and who it threw out.
#[derive(Clone, Debug, Default)]
pub struct SeatingOutcome {
    /// The round's cohort, in the order the verifier chose (this order
    /// becomes `RoundParams::clients`).
    pub seated: Vec<ClientId>,
    /// Claimants whose claims were invalid (forged proof, wrong round,
    /// undecodable); each gets an abort reply and its connection is
    /// closed. Valid claimants that simply did not make the cut belong
    /// in *neither* list — they stay parked for the next round.
    pub rejected: Vec<(ClientId, String)>,
}

/// Verifies one round's participation claims and seats a cohort.
/// Arguments: the round id and every `(claimant, claim bytes)` pair
/// collected during the join window.
pub type SeatingVerifier<'a> = Box<dyn FnMut(u64, &[(ClientId, Vec<u8>)]) -> SeatingOutcome + 'a>;

/// How a session decides each round's cohort.
pub enum Seating<'a> {
    /// The cohort is the fixed `params.clients` roster; a join is a
    /// first-come seat claim, exactly as in the single-round
    /// coordinator.
    Roster,
    /// Clients present a participation claim per round (for Dordis, a
    /// VRF self-selection proof, §7) and the verifier seats the cohort —
    /// verify-and-trim instead of first-come-first-served.
    Claims(SeatingVerifier<'a>),
}

/// Builds the round's [`RoundParams`] from the seated cohort. Under
/// [`Seating::Roster`] the cohort slice is empty and the callback
/// returns the fixed roster parameters; under [`Seating::Claims`] it
/// derives threshold / graph / noise shape from the cohort. The returned
/// `params.round` is overwritten with the session's round counter — the
/// counter comes from the session, never from the callback.
pub type ParamsFor<'a> = Box<dyn FnMut(u64, &[ClientId]) -> RoundParams + 'a>;

/// Configuration of a multi-round session.
pub struct SessionConfig<'a> {
    /// Round id of the first round (stamped into every envelope; later
    /// rounds increment it).
    pub first_round: u64,
    /// How many rounds the session runs.
    pub rounds: u64,
    /// Join/claim window per round.
    pub join_timeout: Duration,
    /// Per-stage response deadline within a round.
    pub stage_timeout: Duration,
    /// Requested chunk count `m` for every round's data plane.
    pub chunks: usize,
    /// Injected per-chunk s-comp cost (see
    /// [`CoordinatorConfig::chunk_compute`]).
    pub chunk_compute: Option<Duration>,
    /// Scheduling granularity (reactor tick / sweep poll slice).
    pub tick: Duration,
    /// Collection engine for every round.
    pub mode: CollectMode,
    /// Compute-plane worker threads shared by every round (`0` =
    /// serial unmasking on the coordinator thread; see
    /// [`CoordinatorConfig::workers`]). Workers stay warm across
    /// rounds.
    pub workers: usize,
    /// Aggregation shard count `S`. `0` or `1` runs the classic single
    /// machine; `S > 1` partitions each round's seated cohort by
    /// [`shard_of`] into `S` parallel [`RoundMachine`]s whose outcomes
    /// merge bit-equal to the unsharded round (see the module docs).
    /// A partition that would leave any shard below the secagg minimum
    /// of 2 clients falls back to the single machine for that round.
    pub shards: usize,
    /// Global ingress budget in bytes for the reactor's shared frame
    /// pool (`0` = unlimited, the bit-equal reference; see
    /// [`CoordinatorConfig::ingress_budget`]). A sharded round splits
    /// the budget evenly across the shard reactors.
    pub ingress_budget: u64,
    /// Whether to broadcast [`StageTag::RoundAnnounce`] at each round
    /// start (required for multi-round sessions; the single-round
    /// legacy wrapper runs without it, clients join eagerly).
    pub announce: bool,
    /// Known client population, used to close the join window early
    /// once everyone has answered (claimed or declined). Empty = always
    /// wait out `join_timeout` unless the roster fills.
    pub population: Vec<ClientId>,
    /// The seating policy.
    pub seating: Seating<'a>,
    /// Per-round parameter builder.
    pub params_for: ParamsFor<'a>,
    /// Telemetry handle shared by the reactor, the compute plane, and
    /// every round machine. [`Telemetry::disabled`] (the usual default)
    /// turns every probe into a no-op.
    pub telemetry: Telemetry,
    /// Bind address (`host:port`) for the Prometheus scrape endpoint,
    /// served by the reactor itself as one more epoll registration.
    /// Requires [`CollectMode::Reactor`]; the sweep has no poller to
    /// hang a listener on.
    pub metrics_addr: Option<String>,
    /// Dedicated channel to a backup coordinator. When set, every
    /// [`Session::commit_round`] ships a [`SessionCheckpoint`] and
    /// blocks until the backup's ack — the checkpoint-then-commit
    /// ordering that makes the privacy ledger failover-safe. `None`
    /// (the default everywhere) is the bit-equal zero-overhead
    /// reference: `commit_round` returns immediately.
    pub replica: Option<Box<dyn EventedChannel>>,
    /// Injected coordinator crashes for the failover harness
    /// ([`FaultPlan::none`] is a no-op on every hook).
    pub faults: FaultPlan,
}

/// A client's answer to one round's announce: a claim (empty bytes for
/// roster joins) or a decline.
type Answer = Option<Vec<u8>>;

/// A multi-round coordinator session over one acceptor.
pub struct Session<'a> {
    acceptor: &'a mut dyn Acceptor,
    cfg: SessionConfig<'a>,
    engine: Option<Reactor>,
    /// Worker pool for pooled unmasking (kept warm across rounds);
    /// `None` runs the serial reference path.
    compute: Option<ComputePlane>,
    /// Authenticated connections not currently inside a round.
    parked: Peers,
    next_round: u64,
    rounds_done: u64,
    next_provisional: u64,
    /// Whether any executed round detected dropouts — only then does
    /// [`Session::finish`] hold its accept-drain grace window open (a
    /// dropped client may be mid-reconnect and still owed a
    /// `SessionEnd`); a fully clean session tears down without the
    /// wait.
    finish_grace: bool,
    /// Where the scrape endpoint actually bound (port 0 resolves here).
    metrics_bound: Option<std::net::SocketAddr>,
    /// Every client id that ever held an authenticated connection; a
    /// provisional join by a known id is a *rejoin* (reconnect after a
    /// dropout) and counts toward `dordis_rejoins_total`.
    seen: BTreeSet<ClientId>,
    /// Timeline bookkeeping: when the inter-round park window opened
    /// (telemetry clock). The next round's start closes the span.
    parked_since: Option<u64>,
    /// The replication link, when this session runs as a replicated
    /// primary. `role` is `None` only transiently inside
    /// [`Session::commit_round`] — or permanently once deposed by a
    /// view change, after which no further round can commit.
    replica: Option<ReplicaLink>,
}

/// The primary's half of the replication protocol: the channel to the
/// backup and the typed role that gates every commit.
struct ReplicaLink {
    chan: Box<dyn EventedChannel>,
    role: Option<Primary>,
}

impl<'a> Session<'a> {
    /// Opens a session over `acceptor` (binds the collection engine;
    /// accepts nothing yet).
    ///
    /// # Errors
    ///
    /// Reactor construction failures, scrape-listener bind failures,
    /// and a `metrics_addr` configured without the reactor engine.
    pub fn new(
        acceptor: &'a mut dyn Acceptor,
        mut cfg: SessionConfig<'a>,
    ) -> Result<Self, NetError> {
        acceptor.set_telemetry(&cfg.telemetry);
        // The replication link stays *unregistered*: checkpoint traffic
        // happens at round boundaries, where the session thread is
        // between collection loops, so the blocking Channel API is
        // exactly right (and works identically under both engines).
        let replica = cfg.replica.take().map(|chan| ReplicaLink {
            chan,
            role: Some(Primary::new()),
        });
        let mut engine = match cfg.mode {
            CollectMode::Reactor => Some(Reactor::with_telemetry(cfg.tick, cfg.telemetry.clone())?),
            CollectMode::PollSweep => None,
        };
        if let Some(reactor) = engine.as_ref() {
            reactor.set_ingress_budget(cfg.ingress_budget);
        }
        let metrics_bound = match (&cfg.metrics_addr, engine.as_mut()) {
            (Some(addr), Some(reactor)) => Some(reactor.serve_metrics(addr)?),
            (Some(_), None) => {
                return Err(NetError::Protocol(
                    "metrics endpoint needs the reactor engine (mode: Reactor)".into(),
                ));
            }
            (None, _) => None,
        };
        // The compute plane publishes completions through the reactor's
        // waker when there is one; under the sweep, completions queue
        // and are drained in the idle slots.
        let compute = (cfg.workers > 0)
            .then(|| ComputePlane::new(cfg.workers, engine.as_ref().map(Reactor::waker)));
        let next_round = cfg.first_round;
        Ok(Session {
            acceptor,
            cfg,
            engine,
            compute,
            parked: BTreeMap::new(),
            next_round,
            rounds_done: 0,
            next_provisional: JOIN_BASE,
            finish_grace: false,
            metrics_bound,
            seen: BTreeSet::new(),
            parked_since: None,
            replica,
        })
    }

    /// Whether this session ships round-boundary checkpoints to a
    /// backup (and therefore gates every commit on its ack).
    #[must_use]
    pub fn is_replicated(&self) -> bool {
        self.replica.is_some()
    }

    /// Commits the round that just completed: ships a
    /// [`SessionCheckpoint`] carrying `app_state` (the driver's opaque
    /// durable state — ledger, model, records) to the backup and blocks
    /// until the ack, bounded by the session's stage timeout.
    ///
    /// Without a replica this returns immediately — the unreplicated
    /// session is the bit-equal zero-overhead reference. With one, the
    /// caller must treat an error as fatal for the primary role: a
    /// round whose checkpoint was never acked **must not** have its
    /// effects applied (ledger recorded, model advanced), because the
    /// backup may already be serving a divergent view.
    ///
    /// # Errors
    ///
    /// - [`NetError::Aborted`] when the backup answered with a
    ///   `ViewChange` (this primary is deposed — now or in a previous
    ///   commit) — stand down.
    /// - [`NetError::Timeout`] / [`NetError::Closed`] when the backup
    ///   is unreachable: the primary halts rather than advance
    ///   unreplicated state.
    pub fn commit_round(&mut self, round: u64, app_state: &[u8]) -> Result<(), NetError> {
        let Some(link) = self.replica.as_mut() else {
            return Ok(());
        };
        let role = link
            .role
            .take()
            .ok_or_else(|| NetError::Aborted("deposed by view change".into()))?;
        let ckpt = SessionCheckpoint {
            round,
            rounds_done: self.rounds_done,
            view: role.view(),
            parked: self.parked.keys().copied().collect(),
            app_state: app_state.to_vec(),
        };
        let span = self
            .cfg
            .telemetry
            .span("session", "checkpoint", round, None);
        self.cfg
            .telemetry
            .histogram("dordis_checkpoint_bytes", &[])
            .observe(ckpt.encode().len() as u64);
        // Typed hand-off: `ship` consumes the Primary, so nothing can
        // commit until `complete` returns it — and a ViewChange frame
        // destroys it instead.
        let waiting = role.ship(&ckpt, link.chan.as_mut())?;
        let frame = link
            .chan
            .recv_deadline(Instant::now() + self.cfg.stage_timeout)?;
        let primary = waiting.complete(&Envelope::decode(&frame)?)?;
        link.role = Some(primary);
        drop(span);
        self.cfg
            .telemetry
            .counter("dordis_checkpoints_total", &[("role", "primary")])
            .inc();
        Ok(())
    }

    /// Where the Prometheus scrape endpoint bound, when one was
    /// configured (port 0 in [`SessionConfig::metrics_addr`] resolves
    /// to the kernel-assigned port here).
    #[must_use]
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics_bound
    }

    /// The session's telemetry handle.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.cfg.telemetry
    }

    /// The round id the next [`Session::run_round`] call will execute.
    #[must_use]
    pub fn current_round(&self) -> u64 {
        self.next_round
    }

    /// Rounds left before the configured horizon.
    #[must_use]
    pub fn rounds_remaining(&self) -> u64 {
        self.cfg.rounds.saturating_sub(self.rounds_done)
    }

    /// Runs the next round: announce, join/claim, seat, execute.
    /// `payload` is broadcast to the cohort inside the Setup frame
    /// (e.g. the current global model); clients receive it alongside the
    /// round parameters.
    ///
    /// # Errors
    ///
    /// Protocol aborts (below threshold, tampering) and engine
    /// failures. Per-client failures are detected dropouts inside the
    /// report, not errors. After an error the surviving connections are
    /// still parked, so a caller may retry with the next round.
    pub fn run_round(&mut self, payload: &[u8]) -> Result<NetRoundReport, NetError> {
        let round = self.next_round;
        // Close the inter-round park window on the timeline, and open
        // the per-round accounting windows: the report's reactor and
        // metrics deltas are measured from *here*, so the join phase —
        // which the round machine never sees — is part of the round's
        // cost.
        if let Some(since) = self.parked_since.take() {
            self.cfg.telemetry.record_span(
                "session",
                "park",
                round,
                None,
                since,
                self.cfg.telemetry.now_ns(),
            );
        }
        let reactor_base = self.engine.as_ref().map(|r| r.stats);
        let metrics_base = self.cfg.telemetry.snapshot();
        let join_span = self.cfg.telemetry.span("session", "join", round, None);
        // Roster seating needs the sampled set up front to vet joins.
        let roster_params = match self.cfg.seating {
            Seating::Roster => {
                let mut p = (self.cfg.params_for)(round, &[]);
                p.round = round;
                Some(p)
            }
            Seating::Claims(_) => None,
        };
        let roster: Option<BTreeSet<ClientId>> = roster_params
            .as_ref()
            .map(|p| p.clients.iter().copied().collect());

        let (answers, join_stale) = self.join_phase(round, roster.as_ref())?;
        drop(join_span);
        let seat_span = self.cfg.telemetry.span("session", "seating", round, None);

        // ---- Seat the cohort. ----
        let params = match (&mut self.cfg.seating, roster_params) {
            (Seating::Roster, Some(p)) => p,
            (Seating::Claims(verifier), _) => {
                let claims: Vec<(ClientId, Vec<u8>)> = answers
                    .iter()
                    .filter_map(|(&id, a)| a.clone().map(|claim| (id, claim)))
                    .collect();
                let outcome = verifier(round, &claims);
                for (id, why) in &outcome.rejected {
                    if let Some(mut chan) = self.parked.remove(id) {
                        let env = Envelope::new(StageTag::Abort, round, codec::encode_abort(why));
                        let _ = send_env(chan.as_mut(), &env);
                        let _ = chan.try_flush();
                    }
                }
                let mut p = (self.cfg.params_for)(round, &outcome.seated);
                p.round = round;
                p
            }
            (Seating::Roster, None) => unreachable!("roster params built above"),
        };

        // Move the cohort's channels out of the parked set; everyone
        // else (declined, trimmed, late) stays parked for later rounds.
        let mut round_peers: Peers = BTreeMap::new();
        for &id in &params.clients {
            if let Some(chan) = self.parked.remove(&id) {
                round_peers.insert(id, chan);
            }
        }
        drop(seat_span);

        let cohort = params.clients.len().min(usize::from(u16::MAX)) as u16;
        let rosters = shard_rosters(&params.clients, self.cfg.shards);
        // A shard below the secagg minimum (2 clients) cannot host a
        // round machine; fall back to the single machine for this
        // round rather than abort.
        let sharded = rosters.len() > 1 && rosters.iter().all(|r| r.len() >= 2);
        let mut shard_reactor: Option<ReactorStats> = None;
        let result = if sharded {
            let result =
                self.run_shards(round, &params, rosters, cohort, &mut round_peers, payload);
            if let Ok(report) = &result {
                shard_reactor = report.reactor;
            }
            result
        } else {
            let cc = CoordinatorConfig {
                params,
                join_timeout: self.cfg.join_timeout,
                stage_timeout: self.cfg.stage_timeout,
                chunks: self.cfg.chunks,
                chunk_compute: self.cfg.chunk_compute,
                tick: self.cfg.tick,
                mode: self.cfg.mode,
                workers: self.cfg.workers,
                telemetry: self.cfg.telemetry.clone(),
                cohort,
                ingress_budget: self.cfg.ingress_budget,
                faults: self.cfg.faults.clone(),
            };
            let machine = RoundMachine::new(&cc)?;
            machine.run(
                self.engine.as_mut(),
                self.compute.as_mut(),
                &mut round_peers,
                &cc,
                payload,
            )
        };

        // Survivors' connections return to the parked set regardless of
        // how the round ended.
        self.parked.append(&mut round_peers);
        self.next_round += 1;
        self.rounds_done += 1;
        if self.cfg.telemetry.is_enabled() {
            self.parked_since = Some(self.cfg.telemetry.now_ns());
        }
        match result {
            Ok(mut report) => {
                report.stale_frames += join_stale;
                // Widen the machine's per-round reactor delta to cover
                // the join phase too, and attach the round's metrics
                // delta; cumulative reactor counters ride alongside.
                let reactor_now = self.engine.as_ref().map(|r| r.stats);
                report.reactor = match (reactor_now, reactor_base) {
                    (Some(now), Some(base)) => Some(now.delta_since(base)),
                    (now, _) => now,
                };
                // A sharded round's wake-up work happened on the shard
                // reactors; add it to the session reactor's own delta
                // (join phase + completion waiting) so `reactor` stays
                // "everything this round cost", sharded or not.
                if let Some(extra) = shard_reactor {
                    report.reactor = Some(match report.reactor {
                        Some(own) => ReactorStats {
                            polls: own.polls + extra.polls,
                            events: own.events + extra.events,
                            timer_fires: own.timer_fires + extra.timer_fires,
                        },
                        None => extra,
                    });
                }
                report.reactor_session = reactor_now;
                report.metrics = match (self.cfg.telemetry.snapshot(), &metrics_base) {
                    (Some(now), Some(base)) => Some(now.delta(base)),
                    _ => None,
                };
                // Sticky: a client dropped in *any* round may still be
                // mid-reconnect at finish (it need not have rejoined in
                // between), so one dropout anywhere keeps the grace
                // window armed for the session's teardown.
                self.finish_grace |= !report.dropouts.is_empty();
                Ok(report)
            }
            Err(e) => {
                // Conservative: after an aborted round anyone might
                // still be reconnecting.
                self.finish_grace = true;
                Err(e)
            }
        }
    }

    /// Runs one round partitioned across `rosters.len()` aggregation
    /// shards: each shard hosts a fresh [`RoundMachine`] over its
    /// roster on its own thread (with its own reactor and compute
    /// plane when so configured), then the per-shard reports merge
    /// into one union report. See the module docs' *Sharded rounds*
    /// section for the bit-equality and privacy-ledger arguments.
    fn run_shards(
        &mut self,
        round: u64,
        params: &RoundParams,
        rosters: Vec<Vec<ClientId>>,
        cohort: u16,
        round_peers: &mut Peers,
        payload: &[u8],
    ) -> Result<NetRoundReport, NetError> {
        let shards = rosters.len();
        let shards_span = self.cfg.telemetry.span("session", "shards", round, None);

        // Build each shard's config and peel its channels off the
        // cohort on this thread. Channels must leave the session poller
        // before they cross to a shard thread (re-registering without
        // deregistering would re-key the fd on the *old* poller); one
        // that cannot is dropped and becomes a detected dropout.
        let mut work: Vec<(CoordinatorConfig, Peers)> = Vec::with_capacity(shards);
        // Each shard reactor gets an even slice of the session budget
        // (floored at the fair-share minimum so a tiny budget over many
        // shards cannot silently become "unlimited").
        let shard_budget = if self.cfg.ingress_budget == 0 {
            0
        } else {
            (self.cfg.ingress_budget / shards as u64).max(crate::pool::MIN_FAIR_SHARE)
        };
        for (s, roster) in rosters.iter().enumerate() {
            let cc = CoordinatorConfig {
                params: shard_params(params, roster),
                join_timeout: self.cfg.join_timeout,
                stage_timeout: self.cfg.stage_timeout,
                chunks: self.cfg.chunks,
                chunk_compute: self.cfg.chunk_compute,
                tick: self.cfg.tick,
                mode: self.cfg.mode,
                workers: self.cfg.workers,
                telemetry: self.cfg.telemetry.shard_scope(s as u16),
                cohort,
                ingress_budget: shard_budget,
                faults: self.cfg.faults.clone(),
            };
            let mut peers: Peers = BTreeMap::new();
            for &id in roster {
                if let Some(mut chan) = round_peers.remove(&id) {
                    if chan.deregister().is_ok() {
                        peers.insert(id, chan);
                    }
                }
            }
            work.push((cc, peers));
        }

        let waker = self.engine.as_ref().map(Reactor::waker);
        let results: Mutex<Vec<ShardSlot>> = Mutex::new((0..shards).map(|_| None).collect());

        std::thread::scope(|scope| -> Result<(), NetError> {
            for (s, (cc, mut peers)) in work.into_iter().enumerate() {
                let results = &results;
                let waker = waker.clone();
                std::thread::Builder::new()
                    // The thread name becomes the span track name in
                    // the Chrome-tracing export.
                    .name(format!("dordis-shard{s}"))
                    .spawn_scoped(scope, move || {
                        let outcome = run_one_shard(&cc, &mut peers, payload);
                        if let Ok(mut slots) = results.lock() {
                            slots[s] = Some((outcome, peers));
                        }
                        if let Some(w) = &waker {
                            w.wake(Token(SHARD_DONE_BASE + s as u64));
                        }
                    })
                    .map_err(|e| NetError::Io(format!("spawn shard {s}: {e}")))?;
            }
            // Keep the session reactor turning while the shards run, so
            // the scrape endpoint stays responsive mid-round; each
            // shard's completion wake cuts the poll short. The sweep
            // has no poller — there the scope's implicit join below is
            // the barrier.
            if let Some(reactor) = self.engine.as_mut() {
                let (mut events, mut expired) = (Vec::new(), Vec::new());
                loop {
                    let done = results
                        .lock()
                        .map_or(shards, |slots| slots.iter().filter(|s| s.is_some()).count());
                    if done == shards {
                        break;
                    }
                    reactor.poll(&mut events, &mut expired, self.cfg.tick)?;
                }
            }
            Ok(())
        })?;
        drop(shards_span);

        let merge_span = self.cfg.telemetry.span("session", "merge", round, None);
        let slots = results
            .into_inner()
            .map_err(|_| NetError::Protocol("shard result lock poisoned".into()))?;
        let mut first_err: Option<NetError> = None;
        let mut reports: Vec<NetRoundReport> = Vec::with_capacity(shards);
        for slot in slots {
            let Some((result, mut peers)) = slot else {
                first_err.get_or_insert(NetError::Protocol("shard thread died".into()));
                continue;
            };
            // Re-home survivors on the session poller *before* any
            // error can propagate: a channel left unregistered would
            // stall the next round's join.
            if let Some(reactor) = self.engine.as_mut() {
                let ids: Vec<ClientId> = peers.keys().copied().collect();
                for id in ids {
                    let registered = peers
                        .get_mut(&id)
                        .is_some_and(|chan| chan.register(reactor, client_token(id)).is_ok());
                    if !registered {
                        peers.remove(&id);
                    }
                }
            }
            round_peers.append(&mut peers);
            match result {
                Ok(report) => reports.push(report),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }

        // Merge. Chunk sums add element-wise in `Z_{2^b}` and survivor
        // sets union inside `merge_shard_outcomes`; removal seeds
        // concatenate (each shard reconstructed a superset of the union
        // removal range — excess-noise removal downstream keys off the
        // union dropout count and ignores the extras). Traffic stats
        // fold per stage; every shard realizes the identical chunk
        // plan, so the chunk count carries over from any one of them.
        let mut outcomes: Vec<RoundOutcome> = Vec::with_capacity(reports.len());
        let mut stats = RoundStats::default();
        let mut dropouts = Vec::new();
        let mut chunks = 0;
        let mut stale_frames = 0;
        let mut reactor: Option<ReactorStats> = None;
        for report in reports {
            outcomes.push(report.outcome);
            merge_stats_into(&mut stats, report.stats);
            dropouts.extend(report.dropouts);
            chunks = report.chunks;
            stale_frames += report.stale_frames;
            if let Some(delta) = report.reactor {
                let acc = reactor.get_or_insert_with(ReactorStats::default);
                acc.polls += delta.polls;
                acc.events += delta.events;
                acc.timer_fires += delta.timer_fires;
            }
        }
        stats.aborted.sort_unstable();
        let outcome = merge_shard_outcomes(&params.clients, outcomes).map_err(NetError::SecAgg)?;
        drop(merge_span);
        Ok(NetRoundReport {
            round,
            outcome,
            stats,
            dropouts,
            chunks,
            stale_frames,
            reactor,
            reactor_session: None,
            metrics: None,
        })
    }

    /// Ends the session: broadcasts [`StageTag::SessionEnd`] to every
    /// parked connection — and to late (re)connections still waiting in
    /// the accept queue, so a client that dropped out of the final
    /// round and reconnected does not hang waiting for an announce —
    /// then drops them all.
    pub fn finish(mut self) {
        // Retire the primary role first: the backup learns the session
        // ended cleanly and will not call a view change when the
        // replication channel drops with this session.
        if let Some(mut link) = self.replica.take() {
            if let Some(role) = link.role.take() {
                role.retire(link.chan.as_mut());
            }
        }
        let env = Envelope::new(StageTag::SessionEnd, self.next_round, Vec::new());
        // One encode for the whole cohort: registered channels enqueue
        // the shared frame by reference (see `wire_message`).
        let wire = wire_message(&env.encode());
        self.cfg
            .telemetry
            .counter("dordis_broadcast_encodes_total", &[])
            .inc();
        for chan in self.parked.values_mut() {
            let _ = chan.send_wire_shared(&wire);
            let _ = chan.try_flush();
        }
        // Already-queued connections are drained either way; the
        // tick-length wait for stragglers is only held open when some
        // round actually lost someone.
        let drain_deadline = if self.finish_grace {
            Instant::now() + self.cfg.tick
        } else {
            Instant::now()
        };
        while let Ok(mut chan) = self.acceptor.accept(drain_deadline) {
            let _ = chan.send_wire_shared(&wire);
            let _ = chan.try_flush();
        }
    }

    // -----------------------------------------------------------------
    // Join / claim phase.
    // -----------------------------------------------------------------

    /// Announces `round` (when configured), collects Join/Decline
    /// answers from parked peers, and accepts new connections, until
    /// everyone answered or the join window closes. Returns the answers
    /// and the number of stale frames discarded.
    fn join_phase(
        &mut self,
        round: u64,
        roster: Option<&BTreeSet<ClientId>>,
    ) -> Result<(BTreeMap<ClientId, Answer>, u64), NetError> {
        let claims_mode = matches!(self.cfg.seating, Seating::Claims(_));
        let mut answers: BTreeMap<ClientId, Answer> = BTreeMap::new();
        let mut stale = 0u64;

        if self.cfg.announce {
            // Encoded once per round; every parked peer queues the same
            // refcounted wire message.
            let wire = wire_message(&announce_frame(round, claims_mode));
            self.cfg
                .telemetry
                .counter("dordis_broadcast_encodes_total", &[])
                .inc();
            let ids: Vec<ClientId> = self.parked.keys().copied().collect();
            for id in ids {
                if let Some(chan) = self.parked.get_mut(&id) {
                    if chan.send_wire_shared(&wire).is_err() || chan.try_flush().is_err() {
                        self.parked.remove(&id);
                    }
                }
            }
        }

        match self.engine.is_some() {
            true => self.join_reactor(round, roster, claims_mode, &mut answers, &mut stale)?,
            false => self.join_sweep(round, roster, claims_mode, &mut answers, &mut stale)?,
        }
        self.seen.extend(answers.keys().copied());
        Ok((answers, stale))
    }

    /// Whether the join window can close early: the roster is fully
    /// seated, or the whole known population has answered.
    fn join_complete(
        &self,
        roster: Option<&BTreeSet<ClientId>>,
        answers: &BTreeMap<ClientId, Answer>,
    ) -> bool {
        match roster {
            Some(sampled) => sampled.iter().all(|id| answers.contains_key(id)),
            None => {
                !self.cfg.population.is_empty()
                    && self
                        .cfg
                        .population
                        .iter()
                        .all(|id| answers.contains_key(id))
            }
        }
    }

    /// Reactor-driven join phase: parked peers' answers and provisional
    /// connections' first frames arrive as readiness events, so one slow
    /// joiner never serializes the others.
    fn join_reactor(
        &mut self,
        round: u64,
        roster: Option<&BTreeSet<ClientId>>,
        claims_mode: bool,
        answers: &mut BTreeMap<ClientId, Answer>,
        stale: &mut u64,
    ) -> Result<(), NetError> {
        let deadline = Instant::now() + self.cfg.join_timeout;
        let mut awaiting: BTreeMap<u64, Box<dyn EventedChannel>> = BTreeMap::new();
        // One announce encoding covers every (re)connection this round.
        let announce_wire = self
            .cfg
            .announce
            .then(|| wire_message(&announce_frame(round, claims_mode)));

        // Initial sweep of parked peers: answers may already be buffered
        // and their readiness consumed by a previous round's poll.
        let ids: Vec<ClientId> = self.parked.keys().copied().collect();
        for id in ids {
            self.drain_parked(round, id, answers, stale);
        }

        let (mut events, mut expired) = (Vec::new(), Vec::new());
        // New connections are drained in short accept slices; the real
        // waiting happens in the poller (answers from registered
        // channels wake it immediately), so a session round's join
        // phase costs microseconds once everyone has answered instead
        // of a full accept tick.
        let accept_slice = Duration::from_millis(1).min(self.cfg.tick);
        while !self.join_complete(roster, answers) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // Drain every queued connection in one go (each successful
            // accept is immediate; only the terminating timeout pays
            // the slice), so a burst of (re)connections never
            // serializes behind poll sleeps.
            loop {
                match self
                    .acceptor
                    .accept((Instant::now() + accept_slice).min(deadline))
                {
                    Ok(mut chan) => {
                        let token = Token(self.next_provisional);
                        self.next_provisional += 1;
                        let reactor = self.engine.as_mut().expect("reactor engine");
                        chan.register(reactor, token)?;
                        reactor.arm_deadline(
                            token,
                            (Instant::now() + self.cfg.stage_timeout).min(deadline),
                        );
                        if let Some(wire) = &announce_wire {
                            if chan.send_wire_shared(wire).is_err() {
                                continue; // connection already dead
                            }
                            let _ = chan.try_flush();
                        }
                        awaiting.insert(token.0, chan);
                    }
                    Err(NetError::Timeout) => break,
                    Err(e) => return Err(e),
                }
                if Instant::now() >= deadline {
                    break;
                }
            }
            let reactor = self.engine.as_mut().expect("reactor engine");
            reactor.poll(&mut events, &mut expired, self.cfg.tick)?;
            for ev in &events {
                if let Some(mut chan) = awaiting.remove(&ev.token.0) {
                    // Drain *through* stale frames: an eager `Join(0)`
                    // and the real claim can both be buffered before a
                    // single wake, and a wake — unlike level-triggered
                    // fd readiness — is consumed whole. Stopping at the
                    // stale frame would strand the claim until the
                    // provisional deadline kills the connection.
                    loop {
                        match chan.try_recv() {
                            Ok(Some(frame)) => {
                                let verdict = self.vet_first_frame(
                                    Envelope::decode(&frame),
                                    round,
                                    roster,
                                    claims_mode,
                                    answers,
                                    stale,
                                );
                                // The decode copied the body out; the
                                // frame allocation goes back to the pool.
                                chan.recycle_frame(frame);
                                match verdict {
                                    Verdict::Admit(id, answer) => {
                                        let reactor = self.engine.as_mut().expect("reactor engine");
                                        reactor.cancel_deadline(ev.token);
                                        chan.register(reactor, client_token(id))?;
                                        answers.insert(id, answer);
                                        self.parked.insert(id, chan);
                                        break;
                                    }
                                    Verdict::Reject(reply) => {
                                        let reactor = self.engine.as_mut().expect("reactor engine");
                                        reactor.cancel_deadline(ev.token);
                                        let _ = send_env(chan.as_mut(), &reply);
                                        let _ = chan.try_flush();
                                        break;
                                    }
                                    Verdict::Stale => {
                                        *stale += 1;
                                        // Keep draining: the real
                                        // answer may be right behind.
                                    }
                                    Verdict::Discard => {
                                        let reactor = self.engine.as_mut().expect("reactor engine");
                                        reactor.cancel_deadline(ev.token);
                                        break;
                                    }
                                }
                            }
                            Ok(None) => {
                                // No (further) complete frame yet: keep
                                // waiting.
                                awaiting.insert(ev.token.0, chan);
                                break;
                            }
                            Err(_) => {
                                let reactor = self.engine.as_mut().expect("reactor engine");
                                reactor.cancel_deadline(ev.token);
                                break;
                            }
                        }
                    }
                } else if let Some(id) = client_of(ev.token) {
                    if ev.writable {
                        if let Some(chan) = self.parked.get_mut(&id) {
                            if chan.try_flush().is_err() {
                                self.parked.remove(&id);
                                continue;
                            }
                        }
                    }
                    if (ev.readable || ev.closed) && self.parked.contains_key(&id) {
                        self.drain_parked(round, id, answers, stale);
                    }
                }
            }
            for token in &expired {
                // Connected but never completed a Join: not a
                // participant (this round).
                awaiting.remove(&token.0);
            }
        }
        // The window closed with some connections still awaiting a
        // verdict. Any first frame already on the wire gets vetted so a
        // rejected peer hears *why* instead of hanging.
        let leftovers: Vec<(u64, Box<dyn EventedChannel>)> = awaiting.into_iter().collect();
        for (token, mut chan) in leftovers {
            if let Some(reactor) = self.engine.as_mut() {
                reactor.cancel_deadline(Token(token));
            }
            // Drain through stale frames here too (see the loop above).
            while let Ok(Some(frame)) = chan.try_recv() {
                let verdict = self.vet_first_frame(
                    Envelope::decode(&frame),
                    round,
                    roster,
                    claims_mode,
                    answers,
                    stale,
                );
                chan.recycle_frame(frame);
                match verdict {
                    Verdict::Admit(id, answer) => {
                        let reactor = self.engine.as_mut().expect("reactor engine");
                        chan.register(reactor, client_token(id))?;
                        answers.insert(id, answer);
                        self.parked.insert(id, chan);
                        break;
                    }
                    Verdict::Reject(reply) => {
                        let _ = send_env(chan.as_mut(), &reply);
                        let _ = chan.try_flush();
                        break;
                    }
                    Verdict::Stale => {
                        *stale += 1;
                        continue;
                    }
                    Verdict::Discard => break,
                }
            }
        }
        Ok(())
    }

    /// Sweep-driven join phase: parked peers are polled in tick slices
    /// between accepts; each provisional connection's first frame is
    /// read with a blocking deadline (the legacy behaviour the
    /// `reactor_scale` bench measures against).
    fn join_sweep(
        &mut self,
        round: u64,
        roster: Option<&BTreeSet<ClientId>>,
        claims_mode: bool,
        answers: &mut BTreeMap<ClientId, Answer>,
        stale: &mut u64,
    ) -> Result<(), NetError> {
        let deadline = Instant::now() + self.cfg.join_timeout;
        while !self.join_complete(roster, answers) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // Service parked peers that have not answered yet.
            let waiting: Vec<ClientId> = self
                .parked
                .keys()
                .copied()
                .filter(|id| !answers.contains_key(id))
                .collect();
            for id in &waiting {
                let Some(chan) = self.parked.get_mut(id) else {
                    continue;
                };
                let slice = (Instant::now() + self.cfg.tick).min(deadline);
                match chan.recv_deadline(slice) {
                    Ok(frame) => {
                        self.file_parked_frame(round, *id, &frame, answers, stale);
                        if let Some(chan) = self.parked.get_mut(id) {
                            chan.recycle_frame(frame);
                        }
                    }
                    Err(NetError::Timeout) => {}
                    Err(_) => {
                        self.parked.remove(id);
                    }
                }
            }
            // Accept: block the full window only when nothing else needs
            // service (the legacy single-round behaviour); otherwise one
            // tick.
            let accept_deadline = if waiting.is_empty() && !self.cfg.announce {
                deadline
            } else {
                (Instant::now() + self.cfg.tick).min(deadline)
            };
            let mut chan = match self.acceptor.accept(accept_deadline) {
                Ok(c) => c,
                Err(NetError::Timeout) => continue,
                Err(e) => return Err(e),
            };
            if self.cfg.announce && chan.send(&announce_frame(round, claims_mode)).is_err() {
                continue;
            }
            // The first frame must arrive promptly once connected.
            let first_deadline = Instant::now()
                + self
                    .cfg
                    .stage_timeout
                    .min(deadline.saturating_duration_since(Instant::now()));
            loop {
                match self.vet_first_frame(
                    recv_env(chan.as_mut(), first_deadline),
                    round,
                    roster,
                    claims_mode,
                    answers,
                    stale,
                ) {
                    Verdict::Admit(id, answer) => {
                        answers.insert(id, answer);
                        self.parked.insert(id, chan);
                        break;
                    }
                    Verdict::Reject(reply) => {
                        let _ = send_env(chan.as_mut(), &reply);
                        break;
                    }
                    Verdict::Stale => {
                        *stale += 1;
                        if Instant::now() >= first_deadline {
                            break;
                        }
                        // Keep reading: the current-round frame may be
                        // right behind the stale one.
                    }
                    Verdict::Discard => break,
                }
            }
        }
        Ok(())
    }

    /// Drains every buffered frame from a parked peer during the join
    /// window.
    fn drain_parked(
        &mut self,
        round: u64,
        id: ClientId,
        answers: &mut BTreeMap<ClientId, Answer>,
        stale: &mut u64,
    ) {
        loop {
            let Some(chan) = self.parked.get_mut(&id) else {
                return;
            };
            match chan.try_recv() {
                Ok(Some(frame)) => {
                    self.file_parked_frame(round, id, &frame, answers, stale);
                    if let Some(chan) = self.parked.get_mut(&id) {
                        chan.recycle_frame(frame);
                    }
                }
                Ok(None) => return,
                Err(_) => {
                    self.parked.remove(&id);
                    return;
                }
            }
        }
    }

    /// Files one frame from a parked (already-authenticated) peer:
    /// a Join (claim) or Decline for the current round, a stale frame
    /// from an earlier round (discarded, typed), or a violation.
    fn file_parked_frame(
        &mut self,
        round: u64,
        id: ClientId,
        frame: &[u8],
        answers: &mut BTreeMap<ClientId, Answer>,
        stale: &mut u64,
    ) {
        let env = match Envelope::decode(frame) {
            Ok(env) => env,
            Err(_) => {
                self.parked.remove(&id);
                return;
            }
        };
        if env.stage == StageTag::Abort {
            self.parked.remove(&id);
            return;
        }
        if let Err(NetError::StaleRound { got, expected }) = env.check_round(round) {
            if got < expected {
                // e.g. a claim for round r arriving after round r's
                // window closed: discard, never treat as a claim for
                // the current round.
                *stale += 1;
                return;
            }
            self.parked.remove(&id);
            return;
        }
        match env.stage {
            StageTag::Join => match codec::decode_join_claim(&env.body) {
                Ok((claimed, claim)) if claimed == id => {
                    answers.insert(id, Some(claim));
                }
                _ => {
                    self.parked.remove(&id);
                }
            },
            StageTag::Decline => {
                answers.insert(id, None);
            }
            _ => {
                self.parked.remove(&id);
            }
        }
    }

    /// Validates the first frame of a provisional connection.
    fn vet_first_frame(
        &mut self,
        env_result: Result<Envelope, NetError>,
        round: u64,
        roster: Option<&BTreeSet<ClientId>>,
        claims_mode: bool,
        answers: &mut BTreeMap<ClientId, Answer>,
        stale: &mut u64,
    ) -> Verdict {
        let env = match env_result {
            Ok(env) => env,
            Err(NetError::Version { got, expected }) => {
                // A peer speaking another wire version must be told to
                // upgrade, not silently counted as a never-join.
                return Verdict::Reject(Envelope::new(
                    StageTag::Abort,
                    round,
                    codec::encode_abort(&format!(
                        "wire version mismatch: you speak v{got}, this coordinator v{expected}"
                    )),
                ));
            }
            Err(_) => return Verdict::Discard,
        };
        let reject = |why: &str| {
            Verdict::Reject(Envelope::new(
                StageTag::Abort,
                round,
                codec::encode_abort(why),
            ))
        };
        // Answers are round-bound in claims mode: a Join or Decline for
        // an older round is stale (the client will re-answer after the
        // announce). Roster joins are round-agnostic (legacy clients
        // join with round 0 and learn the real id from Setup).
        if claims_mode
            && matches!(env.stage, StageTag::Join | StageTag::Decline)
            && env.round != round
        {
            if env.round < round {
                return Verdict::Stale;
            }
            return reject("future round");
        }
        match env.stage {
            StageTag::Join => {
                let Ok((id, claim)) = codec::decode_join_claim(&env.body) else {
                    return Verdict::Discard; // unidentifiable garbage
                };
                if !self.id_admissible(id, roster) {
                    return reject("not in the sampled set");
                }
                if self.parked.contains_key(&id) {
                    // A reconnect is only legitimate if the old channel
                    // is actually dead (the client dropped and came
                    // back); a live duplicate is rejected as before.
                    if self.parked_alive(round, id, answers, stale) {
                        return reject("duplicate join");
                    }
                    self.parked.remove(&id);
                }
                // A fresh connection from an id this session has seen
                // before is a dropout coming back.
                if self.seen.contains(&id) {
                    self.cfg
                        .telemetry
                        .counter("dordis_rejoins_total", &[])
                        .inc();
                }
                Verdict::Admit(id, Some(claim))
            }
            StageTag::Decline => {
                // Declines are never claim-verified (decliners skip
                // seating), so gate them by roster/population like
                // joins — otherwise anyone could park a connection
                // under an arbitrary id and block that id's real join.
                let Ok((id, _)) = codec::decode_join_claim(&env.body) else {
                    return Verdict::Discard;
                };
                if !self.id_admissible(id, roster)
                    || answers.contains_key(&id)
                    || self.parked.contains_key(&id)
                {
                    return Verdict::Discard;
                }
                Verdict::Admit(id, None)
            }
            _ => Verdict::Discard, // wrong first message
        }
    }

    /// Whether `id` may hold a connection in this session: roster
    /// membership when a roster exists, otherwise population membership
    /// (when a population is configured; an empty population means open
    /// enrollment — the seating verifier is then the only gate).
    fn id_admissible(&self, id: ClientId, roster: Option<&BTreeSet<ClientId>>) -> bool {
        match roster {
            Some(sampled) => sampled.contains(&id),
            None => self.cfg.population.is_empty() || self.cfg.population.contains(&id),
        }
    }

    /// Probes whether `id`'s parked channel is still alive. Any
    /// buffered frame the probe consumes is re-filed (it may be the
    /// peer's answer for this round), never discarded. Only the reactor
    /// engine probes: its channels are registered (non-blocking); sweep
    /// channels may still be in blocking mode, and the sweep's
    /// `recv_deadline` pass culls dead parked channels itself, so a
    /// still-present one is treated as live.
    fn parked_alive(
        &mut self,
        round: u64,
        id: ClientId,
        answers: &mut BTreeMap<ClientId, Answer>,
        stale: &mut u64,
    ) -> bool {
        if self.engine.is_none() {
            return true;
        }
        loop {
            match self.parked.get_mut(&id).map(|c| c.try_recv()) {
                Some(Ok(Some(frame))) => {
                    self.file_parked_frame(round, id, &frame, answers, stale);
                    if !self.parked.contains_key(&id) {
                        return false; // the frame itself was fatal
                    }
                    if let Some(chan) = self.parked.get_mut(&id) {
                        chan.recycle_frame(frame);
                    }
                }
                Some(Ok(None)) => return true,
                Some(Err(_)) | None => return false,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sharded rounds.
// ---------------------------------------------------------------------

/// One shard thread's deposit: its round result plus the surviving
/// channels to re-park on the session reactor.
type ShardSlot = Option<(Result<NetRoundReport, NetError>, Peers)>;

/// Wake-token namespace for shard-completion notifications posted to
/// the *session* reactor: shard `s` wakes `SHARD_DONE_BASE + s`. Sits
/// below the reactor's internal metrics-connection namespace and far
/// above client ids and provisional join tokens ([`JOIN_BASE`]).
pub const SHARD_DONE_BASE: u64 = u64::MAX - (2 << 20);

/// Which aggregation shard a client belongs to, for a cohort
/// partitioned into `shards` shards: a splitmix64-style finalizer over
/// the client id, reduced mod `shards`. Deterministic across
/// coordinator and tests; well-mixed, so adjacent ids spread instead of
/// clumping.
#[must_use]
pub fn shard_of(id: ClientId, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut x = u64::from(id).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// Partitions a cohort into per-shard rosters by [`shard_of`],
/// preserving cohort order within each roster (the order becomes the
/// shard's `RoundParams::clients`). `shards <= 1` yields one roster:
/// the cohort itself.
#[must_use]
pub fn shard_rosters(cohort: &[ClientId], shards: usize) -> Vec<Vec<ClientId>> {
    let shards = shards.max(1);
    let mut rosters = vec![Vec::new(); shards];
    for &id in cohort {
        rosters[shard_of(id, shards)].push(id);
    }
    rosters
}

/// Derives one shard's [`RoundParams`] from the union round's.
///
/// The roster is the shard's slice of the cohort (cohort order); the
/// dropout threshold scales proportionally, rounded up (which preserves
/// the malicious model's `2t > |U|` invariant) and clamped to
/// `2..=roster`. `noise_components` stays the *union*'s `T`, so the
/// shard server reconstructs removal seeds over a superset of the union
/// removal range — the privacy ledger accounts dropouts against the
/// full cohort, never a shard roster. The masking graph is re-derived
/// from the roster size ([`MaskingGraph::recommended`]): rosters are
/// hash-partitioned slices with no meaningful neighbor structure to
/// inherit, and pairwise masks only ever cancel within a shard anyway —
/// small shards keep the complete graph (bit-identical to the old
/// pinned behaviour), while large shards get the sparse Harary graph,
/// which with neighborhood-scoped Shamir indexing is what lets a single
/// shard seat rosters past 255 clients.
fn shard_params(union: &RoundParams, roster: &[ClientId]) -> RoundParams {
    let threshold = (union.threshold * roster.len())
        .div_ceil(union.clients.len().max(1))
        .max(2)
        .min(roster.len());
    RoundParams {
        round: union.round,
        clients: roster.to_vec(),
        threshold,
        bit_width: union.bit_width,
        vector_len: union.vector_len,
        noise_components: union.noise_components,
        threat_model: union.threat_model,
        graph: MaskingGraph::recommended(roster.len()),
    }
}

/// One shard's round, on the shard's thread: a fresh engine (its own
/// reactor under [`CollectMode::Reactor`]; the sweep needs none), a
/// fresh compute plane when workers are configured, and a fresh
/// [`RoundMachine`] over the shard roster. Channels arrive deregistered
/// and leave deregistered — the session re-homes survivors on its own
/// poller afterwards.
fn run_one_shard(
    cc: &CoordinatorConfig,
    peers: &mut Peers,
    payload: &[u8],
) -> Result<NetRoundReport, NetError> {
    let mut engine = match cc.mode {
        CollectMode::Reactor => Some(Reactor::with_telemetry(cc.tick, cc.telemetry.clone())?),
        CollectMode::PollSweep => None,
    };
    if let Some(reactor) = engine.as_ref() {
        reactor.set_ingress_budget(cc.ingress_budget);
    }
    let mut compute = (cc.workers > 0)
        .then(|| ComputePlane::new(cc.workers, engine.as_ref().map(Reactor::waker)));
    if let Some(reactor) = engine.as_mut() {
        let ids: Vec<ClientId> = peers.keys().copied().collect();
        for id in ids {
            let registered = peers
                .get_mut(&id)
                .is_some_and(|chan| chan.register(reactor, client_token(id)).is_ok());
            if !registered {
                peers.remove(&id);
            }
        }
    }
    let machine = RoundMachine::new(cc)?;
    let result = machine.run(engine.as_mut(), compute.as_mut(), peers, cc, payload);
    for chan in peers.values_mut() {
        let _ = chan.deregister();
    }
    result
}

/// Folds one shard's per-stage traffic into the union report's: totals
/// add, per-client maxima take the max (the heaviest client in any
/// shard is the heaviest client overall).
fn merge_stats_into(into: &mut RoundStats, from: RoundStats) {
    for stage in from.stages {
        match into.stages.iter_mut().find(|s| s.stage == stage.stage) {
            Some(acc) => {
                acc.uplink_total += stage.uplink_total;
                acc.uplink_max = acc.uplink_max.max(stage.uplink_max);
                acc.downlink_total += stage.downlink_total;
                acc.downlink_max = acc.downlink_max.max(stage.downlink_max);
            }
            None => into.stages.push(stage),
        }
    }
    into.aborted.extend(from.aborted);
}

/// The RoundAnnounce frame for a round, encoded once per use site so
/// parked peers and newly accepted connections always receive the
/// identical announce.
fn announce_frame(round: u64, claims_mode: bool) -> Vec<u8> {
    Envelope::new(
        StageTag::RoundAnnounce,
        round,
        codec::encode_announce(claims_mode),
    )
    .encode()
}

/// Outcome of vetting a provisional connection's first frame.
enum Verdict {
    /// Authenticate the connection as this client, with its answer.
    Admit(ClientId, Answer),
    /// Send the reply and close the connection.
    Reject(Envelope),
    /// Frame from an older round: discard it, keep the connection.
    Stale,
    /// Drop the connection silently.
    Discard,
}
