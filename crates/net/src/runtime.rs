//! The client runtime: drives the `dordis-secagg` client state machine
//! symmetrically to the [`coordinator`](crate::coordinator), over any
//! [`Channel`].
//!
//! The runtime joins, receives the round setup, computes its input via a
//! caller-supplied closure (the update only exists once the round
//! parameters are known), and then answers each server broadcast. A
//! detected inconsistency makes the state machine abort; the runtime
//! forwards that as an explicit `Abort` envelope and goes silent, which
//! is exactly how the driver models aborting clients.
//!
//! For tests and demos, a [`FailPoint`] makes the client misbehave on
//! purpose: disconnect (process kill) or go silent while connected
//! (network partition / hang) just before a chosen stage.

use std::time::{Duration, Instant};

use dordis_pipeline::ChunkPlan;
use dordis_secagg::client::{Client, ClientInput, Identity};
use dordis_secagg::messages::IdList;
use dordis_secagg::{ClientId, RoundParams, SecAggError, ThreatModel};

pub use dordis_secagg::driver::{client_rng, share_keys_rng};

use crate::codec::{self, decode_list, split_masked_input, Encode, Envelope, StageTag};
use crate::transport::{recv_env, send_env, Channel};
use crate::NetError;

/// Stage just before which a [`FailPoint`] fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailStage {
    /// Never advertises keys (connected but useless).
    Advertise,
    /// Drops after advertising, before sharing keys.
    ShareKeys,
    /// Drops after key sharing, before the masked input — the paper's
    /// standard dropout point (§6.1).
    MaskedInput,
    /// Drops mid-stream: sends the first `k` masked-input chunk frames,
    /// then fails — partial chunk delivery, which the coordinator must
    /// detect as a dropout (the client never reaches U3).
    MaskedInputAfterChunks(u16),
    /// Drops before the consistency signature (malicious model).
    Consistency,
    /// Drops before unmasking.
    Unmasking,
    /// Drops before providing noise shares.
    NoiseShares,
}

/// How the failure manifests on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Close the connection (crash / kill): the server sees `Closed`.
    Disconnect,
    /// Stay connected but stop responding: the server must detect the
    /// dropout via its stage deadline.
    Silent,
}

/// Scripted failure injection for tests and demos.
#[derive(Clone, Copy, Debug)]
pub struct FailPoint {
    /// Fire just before sending this stage's message.
    pub stage: FailStage,
    /// What the failure looks like.
    pub action: FailAction,
}

/// Client-side options for one round.
pub struct ClientOptions {
    /// This client's id (must be in the sampled set).
    pub id: ClientId,
    /// Seed for protocol randomness. The derivation below matches the
    /// in-memory driver's, so a loopback round reproduces a driver round
    /// bit for bit.
    pub rng_seed: u64,
    /// Optional scripted failure.
    pub fail: Option<FailPoint>,
    /// How long to wait for each server broadcast (must comfortably
    /// exceed the server's per-stage deadline).
    pub recv_timeout: Duration,
    /// For [`FailAction::Silent`]: how long to keep the connection open
    /// while unresponsive. Set this past the server's stage deadline so
    /// the dropout is detected by timeout rather than by disconnect.
    pub silent_linger: Duration,
}

/// How a client run ended.
#[derive(Clone, Debug)]
pub enum ClientRunOutcome {
    /// Round finished; the server reported these survivors.
    Finished {
        /// Survivor set (U3) from the server's final broadcast.
        survivors: Vec<ClientId>,
    },
    /// A scripted [`FailPoint`] fired.
    Failed {
        /// Which stage the failure preceded.
        stage: FailStage,
    },
    /// The state machine detected an inconsistency and aborted.
    Aborted {
        /// The abort reason.
        reason: String,
    },
    /// The server aborted the round.
    ServerAborted {
        /// The server's reason.
        reason: String,
    },
}

/// Joins a round and participates until it completes (or fails).
///
/// `input_for` builds the (already DP-perturbed) input once the round
/// parameters are known; `identity_for` supplies the PKI identity in the
/// malicious model.
///
/// # Errors
///
/// Transport failures, codec failures, and protocol violations by the
/// server. Scripted failures and state-machine aborts are *outcomes*,
/// not errors.
pub fn run_client<FIn, FId>(
    chan: &mut dyn Channel,
    opts: &ClientOptions,
    input_for: FIn,
    identity_for: FId,
) -> Result<ClientRunOutcome, NetError>
where
    FIn: FnOnce(&RoundParams) -> Result<ClientInput, NetError>,
    FId: FnOnce(&RoundParams) -> Option<Identity>,
{
    // ---- Join. ----
    send_env(
        chan,
        &Envelope::new(StageTag::Join, 0, codec::encode_join(opts.id)),
    )?;

    // ---- Setup. ----
    let env = recv_until(chan, opts)?;
    let (params, requested_chunks) = match env.stage {
        StageTag::Setup => codec::decode_setup(&env.body)?,
        StageTag::Abort => {
            return Ok(ClientRunOutcome::ServerAborted {
                reason: codec::decode_abort(&env.body),
            })
        }
        other => return Err(NetError::Protocol(format!("expected Setup, got {other:?}"))),
    };
    // The server is untrusted: reject malformed round parameters (a
    // hostile bit_width/vector_len could otherwise panic or OOM us)
    // before building anything from them.
    params.validate().map_err(NetError::SecAgg)?;
    // Re-derive the round's chunk plan from the requested count — the
    // same deterministic alignment the coordinator ran, so both sides
    // agree on every chunk boundary without the bounds traveling.
    let plan = ChunkPlan::aligned(
        params.vector_len,
        usize::from(requested_chunks.max(1)),
        params.bit_width,
    )
    .map_err(|e| NetError::Protocol(format!("chunk plan: {e}")))?;
    let round = params.round;
    if !params.clients.contains(&opts.id) {
        return Err(NetError::Protocol("not in the sampled set".into()));
    }

    let input = input_for(&params)?;
    let identity = identity_for(&params);
    if params.threat_model == ThreatModel::Malicious && identity.is_none() {
        return Err(NetError::Protocol(
            "malicious round requires a PKI identity".into(),
        ));
    }
    let mut rng = client_rng(opts.rng_seed, opts.id);
    let mut client = Client::new(params.clone(), opts.id, input, identity, &mut rng)
        .map_err(NetError::SecAgg)?;

    // ---- Stage 0: AdvertiseKeys. ----
    if let Some(out) = maybe_fail(chan, opts, FailStage::Advertise) {
        return Ok(out);
    }
    match client.advertise_keys() {
        Ok(adv) => send_env(
            chan,
            &Envelope::new(StageTag::AdvertiseKeys, round, adv.encoded()),
        )?,
        Err(e) => return abort(chan, round, &e),
    }

    // ---- Serve broadcasts until Finished. ----
    let mut last_u3: Vec<ClientId> = Vec::new();
    loop {
        let env = recv_until(chan, opts)?;
        if env.round != round && env.stage != StageTag::Abort {
            return Err(NetError::Protocol(format!(
                "round mismatch: expected {round}, got {}",
                env.round
            )));
        }
        match env.stage {
            StageTag::Roster => {
                if let Some(out) = maybe_fail(chan, opts, FailStage::ShareKeys) {
                    return Ok(out);
                }
                let roster = decode_list(&env.body, codec::decode_advertised_keys)?;
                let mut rng = share_keys_rng(opts.rng_seed, opts.id);
                match client.share_keys(&roster, &mut rng) {
                    Ok(cts) => send_env(
                        chan,
                        &Envelope::new(StageTag::ShareKeys, round, codec::encode_list(&cts)),
                    )?,
                    Err(e) => return abort(chan, round, &e),
                }
            }
            StageTag::Inbox => {
                if let Some(out) = maybe_fail(chan, opts, FailStage::MaskedInput) {
                    return Ok(out);
                }
                let inbox = decode_list(&env.body, codec::decode_encrypted_shares)?;
                match client.masked_input(inbox) {
                    Ok(m) => {
                        // Stream the masked input one chunk frame at a
                        // time, in schedule order — this is what lets
                        // the coordinator aggregate chunk c while chunk
                        // c+1 is still on the wire.
                        let parts = split_masked_input(&m, &plan)?;
                        let partial = match opts.fail {
                            Some(FailPoint {
                                stage: FailStage::MaskedInputAfterChunks(k),
                                action,
                            }) => Some((usize::from(k), action)),
                            _ => None,
                        };
                        // A fail point that cannot fire would silently
                        // validate nothing — reject it loudly instead
                        // of completing the round as a healthy client.
                        if let Some((k, _)) = partial {
                            if k >= parts.len() {
                                return Err(NetError::Protocol(format!(
                                    "fail point MaskedInputAfterChunks({k}) cannot fire: \
                                     the round realizes only {} chunk(s)",
                                    parts.len()
                                )));
                            }
                        }
                        for (c, part) in parts.iter().enumerate() {
                            if let Some((k, action)) = partial {
                                if c == k {
                                    // Mid-stream failure: k chunks are
                                    // already out, the rest never leave.
                                    if action == FailAction::Silent {
                                        std::thread::sleep(opts.silent_linger);
                                    }
                                    return Ok(ClientRunOutcome::Failed {
                                        stage: FailStage::MaskedInputAfterChunks(k as u16),
                                    });
                                }
                            }
                            send_env(
                                chan,
                                &Envelope::chunked(
                                    StageTag::MaskedInput,
                                    round,
                                    c as u16,
                                    part.encoded(),
                                ),
                            )?;
                        }
                    }
                    Err(e) => return abort(chan, round, &e),
                }
            }
            StageTag::SurvivorSet => {
                let IdList(u3) = codec::decode_id_list(&env.body)?;
                last_u3 = u3.clone();
                if params.threat_model == ThreatModel::Malicious {
                    if let Some(out) = maybe_fail(chan, opts, FailStage::Consistency) {
                        return Ok(out);
                    }
                    match client.consistency_check(&u3) {
                        Ok(sig) => send_env(
                            chan,
                            &Envelope::new(StageTag::ConsistencySig, round, sig.encoded()),
                        )?,
                        Err(e) => return abort(chan, round, &e),
                    }
                } else {
                    if let Some(out) = maybe_fail(chan, opts, FailStage::Unmasking) {
                        return Ok(out);
                    }
                    match client.unmask(&u3, None) {
                        Ok(r) => send_env(
                            chan,
                            &Envelope::new(StageTag::Unmasking, round, r.encoded()),
                        )?,
                        Err(e) => return abort(chan, round, &e),
                    }
                }
            }
            StageTag::SignatureList => {
                // Malicious model: U3 was fixed at consistency_check.
                if let Some(out) = maybe_fail(chan, opts, FailStage::Unmasking) {
                    return Ok(out);
                }
                let sigs = codec::decode_signature_list(&env.body)?;
                match client.unmask(&last_u3, Some(&sigs)) {
                    Ok(r) => send_env(
                        chan,
                        &Envelope::new(StageTag::Unmasking, round, r.encoded()),
                    )?,
                    Err(e) => return abort(chan, round, &e),
                }
            }
            StageTag::ReadySet => {
                if let Some(out) = maybe_fail(chan, opts, FailStage::NoiseShares) {
                    return Ok(out);
                }
                let IdList(u5) = codec::decode_id_list(&env.body)?;
                match client.noise_shares(&u5) {
                    Ok(r) => send_env(
                        chan,
                        &Envelope::new(StageTag::NoiseShares, round, r.encoded()),
                    )?,
                    Err(e) => return abort(chan, round, &e),
                }
            }
            StageTag::Finished => {
                let IdList(survivors) = codec::decode_id_list(&env.body)?;
                return Ok(ClientRunOutcome::Finished { survivors });
            }
            StageTag::Abort => {
                return Ok(ClientRunOutcome::ServerAborted {
                    reason: codec::decode_abort(&env.body),
                });
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "unexpected server stage {other:?}"
                )))
            }
        }
    }
}

fn recv_until(chan: &mut dyn Channel, opts: &ClientOptions) -> Result<Envelope, NetError> {
    recv_env(chan, Instant::now() + opts.recv_timeout)
}

/// Fires the fail point if configured for `stage`.
fn maybe_fail(
    chan: &mut dyn Channel,
    opts: &ClientOptions,
    stage: FailStage,
) -> Option<ClientRunOutcome> {
    let fail = opts.fail?;
    if fail.stage != stage {
        return None;
    }
    if fail.action == FailAction::Silent {
        // Stay connected but unresponsive past the server's stage
        // deadline, so the dropout is detected by timeout (a real
        // partitioned client would hang indefinitely). `chan` is held by
        // the caller, so merely sleeping keeps it open.
        let _ = &chan;
        std::thread::sleep(opts.silent_linger);
    }
    Some(ClientRunOutcome::Failed { stage })
}

/// Reports a state-machine abort to the server and ends the run.
fn abort(
    chan: &mut dyn Channel,
    round: u64,
    e: &SecAggError,
) -> Result<ClientRunOutcome, NetError> {
    let reason = e.to_string();
    let _ = send_env(
        chan,
        &Envelope::new(StageTag::Abort, round, codec::encode_abort(&reason)),
    );
    Ok(ClientRunOutcome::Aborted { reason })
}
