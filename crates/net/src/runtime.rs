//! The client runtime: drives the `dordis-secagg` client state machine
//! symmetrically to the [`coordinator`](crate::coordinator), over any
//! [`Channel`].
//!
//! Two entry points:
//!
//! - [`run_client`]: the single-round runtime. Joins eagerly, receives
//!   the round setup, computes its input via a caller-supplied closure
//!   (the update only exists once the round parameters are known), and
//!   answers each server broadcast.
//! - [`run_session_client`]: the multi-round session runtime. Answers
//!   every [`StageTag::RoundAnnounce`] with a participation claim (or a
//!   decline), participates in each round it is seated for — building a
//!   **fresh** per-round protocol state machine with per-round
//!   randomness ([`round_rng_seed`]) — and keeps the connection warm
//!   between rounds until the server's `SessionEnd`.
//!
//! A detected inconsistency makes the state machine abort; the runtime
//! forwards that as an explicit `Abort` envelope and goes silent, which
//! is exactly how the driver models aborting clients. A frame whose
//! round id differs from the round being executed surfaces as the typed
//! [`NetError::StaleRound`], never as state of the wrong round.
//!
//! For tests and demos, a [`FailPoint`] makes the client misbehave on
//! purpose: disconnect (process kill) or go silent while connected
//! (network partition / hang) just before a chosen stage. In a session,
//! a failed client's process can reconnect and re-join from the next
//! round's announce — the dropout-then-rejoin path the paper's workload
//! is defined by.

use std::time::{Duration, Instant};

use dordis_pipeline::ChunkPlan;
use dordis_secagg::client::{Client, ClientInput, Identity};
use dordis_secagg::messages::IdList;
use dordis_secagg::{ClientId, RoundParams, SecAggError, ThreatModel};

pub use dordis_secagg::driver::{client_rng, round_rng_seed, share_keys_rng};

use crate::codec::{self, decode_list, split_masked_input, Encode, Envelope, StageTag};
use crate::transport::{recv_env, send_env, Channel};
use crate::NetError;

/// Stage just before which a [`FailPoint`] fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailStage {
    /// Never advertises keys (connected but useless).
    Advertise,
    /// Drops after advertising, before sharing keys.
    ShareKeys,
    /// Drops after key sharing, before the masked input — the paper's
    /// standard dropout point (§6.1).
    MaskedInput,
    /// Drops mid-stream: sends the first `k` masked-input chunk frames,
    /// then fails — partial chunk delivery, which the coordinator must
    /// detect as a dropout (the client never reaches U3).
    MaskedInputAfterChunks(u16),
    /// Drops before the consistency signature (malicious model).
    Consistency,
    /// Drops before unmasking.
    Unmasking,
    /// Drops before providing noise shares.
    NoiseShares,
}

/// How the failure manifests on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Close the connection (crash / kill): the server sees `Closed`.
    Disconnect,
    /// Stay connected but stop responding: the server must detect the
    /// dropout via its stage deadline.
    Silent,
}

/// Scripted failure injection for tests and demos.
#[derive(Clone, Copy, Debug)]
pub struct FailPoint {
    /// Fire just before sending this stage's message.
    pub stage: FailStage,
    /// What the failure looks like.
    pub action: FailAction,
}

/// Client-side options for one round.
pub struct ClientOptions {
    /// This client's id (must be in the sampled set).
    pub id: ClientId,
    /// Seed for protocol randomness. The derivation below matches the
    /// in-memory driver's, so a loopback round reproduces a driver round
    /// bit for bit.
    pub rng_seed: u64,
    /// Optional scripted failure.
    pub fail: Option<FailPoint>,
    /// How long to wait for each server broadcast (must comfortably
    /// exceed the server's per-stage deadline).
    pub recv_timeout: Duration,
    /// For [`FailAction::Silent`]: how long to keep the connection open
    /// while unresponsive. Set this past the server's stage deadline so
    /// the dropout is detected by timeout rather than by disconnect.
    pub silent_linger: Duration,
}

/// How a client run ended.
#[derive(Clone, Debug)]
pub enum ClientRunOutcome {
    /// Round finished; the server reported these survivors.
    Finished {
        /// Survivor set (U3) from the server's final broadcast.
        survivors: Vec<ClientId>,
    },
    /// A scripted [`FailPoint`] fired.
    Failed {
        /// Which stage the failure preceded.
        stage: FailStage,
    },
    /// The state machine detected an inconsistency and aborted.
    Aborted {
        /// The abort reason.
        reason: String,
    },
    /// The server aborted the round.
    ServerAborted {
        /// The server's reason.
        reason: String,
    },
}

/// Joins a round and participates until it completes (or fails).
///
/// `input_for` builds the (already DP-perturbed) input once the round
/// parameters are known; `identity_for` supplies the PKI identity in the
/// malicious model.
///
/// # Errors
///
/// Transport failures, codec failures, and protocol violations by the
/// server. Scripted failures and state-machine aborts are *outcomes*,
/// not errors.
pub fn run_client<FIn, FId>(
    chan: &mut dyn Channel,
    opts: &ClientOptions,
    input_for: FIn,
    identity_for: FId,
) -> Result<ClientRunOutcome, NetError>
where
    FIn: FnOnce(&RoundParams) -> Result<ClientInput, NetError>,
    FId: FnOnce(&RoundParams) -> Option<Identity>,
{
    // ---- Join. ----
    // Eager joins carry round 0: the client learns the real round id
    // from the Setup broadcast.
    send_env(
        chan,
        &Envelope::new(StageTag::Join, 0, codec::encode_join(opts.id)),
    )?;

    // ---- Setup. ----
    let env = recv_until(chan, opts.recv_timeout)?;
    match env.stage {
        StageTag::Setup => participate(
            chan,
            opts,
            env.round,
            &env.body,
            |params, _cohort, _payload| input_for(params),
            identity_for,
        ),
        StageTag::Abort => Ok(ClientRunOutcome::ServerAborted {
            reason: codec::decode_abort(&env.body),
        }),
        other => Err(NetError::Protocol(format!("expected Setup, got {other:?}"))),
    }
}

/// Executes one round from its Setup body onward: builds a fresh
/// protocol state machine for the round and serves broadcasts until
/// Finished (or a failure outcome).
///
/// # Errors
///
/// Transport/codec failures, server protocol violations, and — typed —
/// [`NetError::StaleRound`] when a broadcast carries the wrong round id.
fn participate<FIn, FId>(
    chan: &mut dyn Channel,
    opts: &ClientOptions,
    env_round: u64,
    setup_body: &[u8],
    input_for: FIn,
    identity_for: FId,
) -> Result<ClientRunOutcome, NetError>
where
    FIn: FnOnce(&RoundParams, u16, &[u8]) -> Result<ClientInput, NetError>,
    FId: FnOnce(&RoundParams) -> Option<Identity>,
{
    let (params, requested_chunks, cohort, payload) = codec::decode_setup(setup_body)?;
    // The server is untrusted: reject malformed round parameters (a
    // hostile bit_width/vector_len could otherwise panic or OOM us)
    // before building anything from them.
    params.validate().map_err(NetError::SecAgg)?;
    // The union cohort size can only exceed this round's client set
    // (sharded rounds: `params.clients` is one shard's roster, the
    // cohort is the full sampled set every shard partitions).
    if usize::from(cohort) < params.clients.len() {
        return Err(NetError::Protocol(format!(
            "Setup cohort {cohort} smaller than its own client set ({})",
            params.clients.len()
        )));
    }
    let round = params.round;
    if round != env_round {
        return Err(NetError::Protocol(format!(
            "Setup round {round} disagrees with its envelope ({env_round})"
        )));
    }
    // Re-derive the round's chunk plan from the requested count — the
    // same deterministic alignment the coordinator ran, so both sides
    // agree on every chunk boundary without the bounds traveling.
    let plan = ChunkPlan::aligned(
        params.vector_len,
        usize::from(requested_chunks.max(1)),
        params.bit_width,
    )
    .map_err(|e| NetError::Protocol(format!("chunk plan: {e}")))?;
    if !params.clients.contains(&opts.id) {
        return Err(NetError::Protocol("not in the sampled set".into()));
    }

    let input = input_for(&params, cohort, &payload)?;
    let identity = identity_for(&params);
    if params.threat_model == ThreatModel::Malicious && identity.is_none() {
        return Err(NetError::Protocol(
            "malicious round requires a PKI identity".into(),
        ));
    }
    let mut rng = client_rng(opts.rng_seed, opts.id);
    let mut client = Client::new(params.clone(), opts.id, input, identity, &mut rng)
        .map_err(NetError::SecAgg)?;

    // ---- Stage 0: AdvertiseKeys. ----
    if let Some(out) = maybe_fail(chan, opts, FailStage::Advertise) {
        return Ok(out);
    }
    match client.advertise_keys() {
        Ok(adv) => send_env(
            chan,
            &Envelope::new(StageTag::AdvertiseKeys, round, adv.encoded()),
        )?,
        Err(e) => return abort(chan, round, &e),
    }

    // ---- Serve broadcasts until Finished. ----
    let mut last_u3: Vec<ClientId> = Vec::new();
    loop {
        let env = recv_until(chan, opts.recv_timeout)?;
        env.check_round(round)?;
        match env.stage {
            StageTag::Roster => {
                if let Some(out) = maybe_fail(chan, opts, FailStage::ShareKeys) {
                    return Ok(out);
                }
                let roster = decode_list(&env.body, codec::decode_advertised_keys)?;
                let mut rng = share_keys_rng(opts.rng_seed, opts.id);
                match client.share_keys(&roster, &mut rng) {
                    Ok(cts) => send_env(
                        chan,
                        &Envelope::new(StageTag::ShareKeys, round, codec::encode_list(&cts)),
                    )?,
                    Err(e) => return abort(chan, round, &e),
                }
            }
            StageTag::Inbox => {
                if let Some(out) = maybe_fail(chan, opts, FailStage::MaskedInput) {
                    return Ok(out);
                }
                let inbox = decode_list(&env.body, codec::decode_encrypted_shares)?;
                match client.masked_input(inbox) {
                    Ok(m) => {
                        // Stream the masked input one chunk frame at a
                        // time, in schedule order — this is what lets
                        // the coordinator aggregate chunk c while chunk
                        // c+1 is still on the wire.
                        let parts = split_masked_input(&m, &plan)?;
                        let partial = match opts.fail {
                            Some(FailPoint {
                                stage: FailStage::MaskedInputAfterChunks(k),
                                action,
                            }) => Some((usize::from(k), action)),
                            _ => None,
                        };
                        // A fail point that cannot fire would silently
                        // validate nothing — reject it loudly instead
                        // of completing the round as a healthy client.
                        if let Some((k, _)) = partial {
                            if k >= parts.len() {
                                return Err(NetError::Protocol(format!(
                                    "fail point MaskedInputAfterChunks({k}) cannot fire: \
                                     the round realizes only {} chunk(s)",
                                    parts.len()
                                )));
                            }
                        }
                        for (c, part) in parts.iter().enumerate() {
                            if let Some((k, action)) = partial {
                                if c == k {
                                    // Mid-stream failure: k chunks are
                                    // already out, the rest never leave.
                                    if action == FailAction::Silent {
                                        std::thread::sleep(opts.silent_linger);
                                    }
                                    return Ok(ClientRunOutcome::Failed {
                                        stage: FailStage::MaskedInputAfterChunks(k as u16),
                                    });
                                }
                            }
                            send_env(
                                chan,
                                &Envelope::chunked(
                                    StageTag::MaskedInput,
                                    round,
                                    c as u16,
                                    part.encoded(),
                                ),
                            )?;
                        }
                    }
                    Err(e) => return abort(chan, round, &e),
                }
            }
            StageTag::SurvivorSet => {
                let IdList(u3) = codec::decode_id_list(&env.body)?;
                last_u3 = u3.clone();
                if params.threat_model == ThreatModel::Malicious {
                    if let Some(out) = maybe_fail(chan, opts, FailStage::Consistency) {
                        return Ok(out);
                    }
                    match client.consistency_check(&u3) {
                        Ok(sig) => send_env(
                            chan,
                            &Envelope::new(StageTag::ConsistencySig, round, sig.encoded()),
                        )?,
                        Err(e) => return abort(chan, round, &e),
                    }
                } else {
                    if let Some(out) = maybe_fail(chan, opts, FailStage::Unmasking) {
                        return Ok(out);
                    }
                    match client.unmask(&u3, None) {
                        Ok(r) => send_env(
                            chan,
                            &Envelope::new(StageTag::Unmasking, round, r.encoded()),
                        )?,
                        Err(e) => return abort(chan, round, &e),
                    }
                }
            }
            StageTag::SignatureList => {
                // Malicious model: U3 was fixed at consistency_check.
                if let Some(out) = maybe_fail(chan, opts, FailStage::Unmasking) {
                    return Ok(out);
                }
                let sigs = codec::decode_signature_list(&env.body)?;
                match client.unmask(&last_u3, Some(&sigs)) {
                    Ok(r) => send_env(
                        chan,
                        &Envelope::new(StageTag::Unmasking, round, r.encoded()),
                    )?,
                    Err(e) => return abort(chan, round, &e),
                }
            }
            StageTag::ReadySet => {
                if let Some(out) = maybe_fail(chan, opts, FailStage::NoiseShares) {
                    return Ok(out);
                }
                let IdList(u5) = codec::decode_id_list(&env.body)?;
                match client.noise_shares(&u5) {
                    Ok(r) => send_env(
                        chan,
                        &Envelope::new(StageTag::NoiseShares, round, r.encoded()),
                    )?,
                    Err(e) => return abort(chan, round, &e),
                }
            }
            StageTag::Finished => {
                let IdList(survivors) = codec::decode_id_list(&env.body)?;
                return Ok(ClientRunOutcome::Finished { survivors });
            }
            StageTag::Abort => {
                return Ok(ClientRunOutcome::ServerAborted {
                    reason: codec::decode_abort(&env.body),
                });
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "unexpected server stage {other:?}"
                )))
            }
        }
    }
}

// ---------------------------------------------------------------------
// The session client.
// ---------------------------------------------------------------------

/// Client-side options for a multi-round session.
pub struct SessionClientOptions {
    /// This client's id.
    pub id: ClientId,
    /// Base protocol seed; each round uses [`round_rng_seed`] of it, so
    /// masks never repeat across rounds and each round reproduces the
    /// in-memory driver round with the same derived seed bit for bit.
    pub rng_seed: u64,
    /// How long to wait for each server frame. Between rounds this must
    /// cover a whole round the client is *not* seated in (it hears
    /// nothing until the next announce).
    pub recv_timeout: Duration,
    /// See [`ClientOptions::silent_linger`].
    pub silent_linger: Duration,
}

/// One round's result from the session client's perspective.
#[derive(Clone, Debug)]
pub struct SessionRoundResult {
    /// The round id.
    pub round: u64,
    /// How participation ended.
    pub outcome: ClientRunOutcome,
}

/// Why the session client returned.
#[derive(Clone, Debug)]
pub enum SessionEndKind {
    /// The server closed the session (`SessionEnd`).
    Ended,
    /// A scripted [`FailPoint`] fired in `round`; the caller may
    /// reconnect and re-join from the next round.
    Failed {
        /// The round the failure fired in.
        round: u64,
        /// The failing stage.
        stage: FailStage,
    },
    /// The local state machine aborted in `round` (the server will have
    /// dropped this connection).
    Aborted {
        /// The round the abort fired in.
        round: u64,
        /// The abort reason.
        reason: String,
    },
    /// The server aborted (session- or round-level).
    ServerAborted {
        /// The server's reason.
        reason: String,
    },
}

/// Everything a session client observed.
#[derive(Debug)]
pub struct SessionClientReport {
    /// Per-round results, in order, for the rounds this client was
    /// seated in.
    pub rounds: Vec<SessionRoundResult>,
    /// Why the run ended.
    pub end: SessionEndKind,
}

/// Participates in a multi-round session over one connection.
///
/// Per announced round `r`, `select(r)` returns the participation-claim
/// bytes (`None` declines); in roster (claim-free) sessions the client
/// always joins. When seated, `input_for(r, params, cohort, payload)`
/// builds the round's input from the Setup payload (e.g. the current
/// global model) — `cohort` is the *union* seated-cohort size, which in
/// a sharded round exceeds `params.clients.len()` (the shard roster)
/// and is what XNoise planning must key off — and `fail_for(r)` may
/// inject a scripted failure.
///
/// # Errors
///
/// Transport/codec failures and server protocol violations. Scripted
/// failures, aborts, and session end are reported in the
/// [`SessionClientReport`], not as errors.
pub fn run_session_client<FSel, FFail, FIn, FId>(
    chan: &mut dyn Channel,
    opts: &SessionClientOptions,
    mut select: FSel,
    mut fail_for: FFail,
    mut input_for: FIn,
    mut identity_for: FId,
) -> Result<SessionClientReport, NetError>
where
    FSel: FnMut(u64) -> Option<Vec<u8>>,
    FFail: FnMut(u64) -> Option<FailPoint>,
    FIn: FnMut(u64, &RoundParams, u16, &[u8]) -> Result<ClientInput, NetError>,
    FId: FnMut(&RoundParams) -> Option<Identity>,
{
    let mut rounds: Vec<SessionRoundResult> = Vec::new();
    // Eager join: announce-then-answer costs a round-trip before the
    // session's *first* round can even be seated, which is exactly the
    // overhead a one-round session pays over the legacy eager
    // `run_client`. So the client joins optimistically at connect time,
    // stamped round 0 (round ids start at 1): a roster session admits
    // it immediately — its first RoundAnnounce is then answered by this
    // already-filed join, no extra round-trip — while a claims session
    // discards it as typed-stale and waits for the real claim after the
    // announce.
    send_env(
        chan,
        &Envelope::new(StageTag::Join, 0, codec::encode_join(opts.id)),
    )?;
    let mut eager_join_pending = true;
    // The server is untrusted: rounds must advance strictly, or a
    // replayed announce/Setup for an already-played round would make
    // this client re-derive that round's [`round_rng_seed`] and reuse
    // its masks — exactly the secret-reuse a recorded transcript could
    // then unmask.
    let mut last_round: Option<u64> = None;
    loop {
        let env = recv_until(chan, opts.recv_timeout)?;
        if matches!(env.stage, StageTag::RoundAnnounce | StageTag::Setup) {
            if let Some(prev) = last_round {
                if env.round <= prev {
                    return Err(NetError::StaleRound {
                        got: env.round,
                        expected: prev + 1,
                    });
                }
            }
        }
        match env.stage {
            StageTag::RoundAnnounce => {
                let claims_required = codec::decode_announce(&env.body)?;
                let round = env.round;
                if claims_required {
                    // The eager join (if any) was discarded as stale by
                    // the coordinator; answer with the real claim.
                    eager_join_pending = false;
                    match select(round) {
                        Some(claim) => send_env(
                            chan,
                            &Envelope::new(
                                StageTag::Join,
                                round,
                                codec::encode_join_claim(opts.id, &claim),
                            ),
                        )?,
                        None => send_env(
                            chan,
                            &Envelope::new(StageTag::Decline, round, codec::encode_join(opts.id)),
                        )?,
                    }
                } else if eager_join_pending {
                    // The first roster announce is already answered by
                    // the eager join sent at connect; answering again
                    // would land a duplicate Join in the round's stage
                    // collection and read as a protocol violation.
                    eager_join_pending = false;
                } else {
                    send_env(
                        chan,
                        &Envelope::new(StageTag::Join, round, codec::encode_join(opts.id)),
                    )?;
                }
            }
            StageTag::Setup => {
                let round = env.round;
                let ropts = ClientOptions {
                    id: opts.id,
                    rng_seed: round_rng_seed(opts.rng_seed, round),
                    fail: fail_for(round),
                    recv_timeout: opts.recv_timeout,
                    silent_linger: opts.silent_linger,
                };
                let outcome = participate(
                    chan,
                    &ropts,
                    round,
                    &env.body,
                    |params, cohort, payload| input_for(round, params, cohort, payload),
                    &mut identity_for,
                )?;
                last_round = Some(round);
                rounds.push(SessionRoundResult {
                    round,
                    outcome: outcome.clone(),
                });
                match outcome {
                    ClientRunOutcome::Finished { .. } => {}
                    ClientRunOutcome::Failed { stage } => {
                        return Ok(SessionClientReport {
                            rounds,
                            end: SessionEndKind::Failed { round, stage },
                        });
                    }
                    ClientRunOutcome::Aborted { reason } => {
                        return Ok(SessionClientReport {
                            rounds,
                            end: SessionEndKind::Aborted { round, reason },
                        });
                    }
                    ClientRunOutcome::ServerAborted { reason } => {
                        return Ok(SessionClientReport {
                            rounds,
                            end: SessionEndKind::ServerAborted { reason },
                        });
                    }
                }
            }
            StageTag::SessionEnd => {
                return Ok(SessionClientReport {
                    rounds,
                    end: SessionEndKind::Ended,
                });
            }
            StageTag::Abort => {
                return Ok(SessionClientReport {
                    rounds,
                    end: SessionEndKind::ServerAborted {
                        reason: codec::decode_abort(&env.body),
                    },
                });
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "unexpected server stage {other:?} between rounds"
                )))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Reconnect backoff.
// ---------------------------------------------------------------------

/// Bounded exponential backoff with jitter for reconnect loops.
///
/// When a coordinator dies, every one of its clients notices within one
/// stage deadline of each other; naive immediate retry turns the backup
/// (or the restarted primary) into its own thundering-herd victim. Each
/// attempt `k` waits `frac · min(cap, base · 2^k)` where `frac ∈
/// [0.5, 1.0)` is a deterministic splitmix64 hash of `(key, k)` — use
/// the client id as the key and a thousand clients spread across the
/// window instead of arriving in one burst, while any single client's
/// retry schedule stays reproducible in tests.
#[derive(Clone, Debug)]
pub struct Backoff {
    key: u64,
    base: Duration,
    cap: Duration,
    attempt: u32,
}

impl Backoff {
    /// A backoff schedule keyed on `key` (e.g. the client id), starting
    /// at `base` and never exceeding `cap` per wait.
    #[must_use]
    pub fn new(key: u64, base: Duration, cap: Duration) -> Backoff {
        Backoff {
            key,
            base: base.max(Duration::from_millis(1)),
            cap: cap.max(base),
            attempt: 0,
        }
    }

    /// Attempts made so far (`next_delay` calls since the last reset).
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Forgets the attempt count — call after a successful connection,
    /// so a much later disconnect starts fresh from `base`.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// The next wait in the schedule (advances the attempt counter).
    #[must_use]
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(20); // 2^20 · base saturates any sane cap
        self.attempt = self.attempt.wrapping_add(1);
        let ceiling = self
            .base
            .checked_mul(1u32 << exp)
            .map_or(self.cap, |d| d.min(self.cap));
        // frac ∈ [0.5, 1.0): full jitter halves herd correlation while
        // keeping every wait within 2x of its neighbor's.
        let mut z = self
            .key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(exp).wrapping_add(u64::from(self.attempt)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let frac = 0.5 + 0.5 * ((z >> 11) as f64 / (1u64 << 53) as f64);
        ceiling.mul_f64(frac)
    }

    /// Sleeps for [`Backoff::next_delay`].
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }
}

fn recv_until(chan: &mut dyn Channel, timeout: Duration) -> Result<Envelope, NetError> {
    recv_env(chan, Instant::now() + timeout)
}

/// Fires the fail point if configured for `stage`.
fn maybe_fail(
    chan: &mut dyn Channel,
    opts: &ClientOptions,
    stage: FailStage,
) -> Option<ClientRunOutcome> {
    let fail = opts.fail?;
    if fail.stage != stage {
        return None;
    }
    if fail.action == FailAction::Silent {
        // Stay connected but unresponsive past the server's stage
        // deadline, so the dropout is detected by timeout (a real
        // partitioned client would hang indefinitely). `chan` is held by
        // the caller, so merely sleeping keeps it open.
        let _ = &chan;
        std::thread::sleep(opts.silent_linger);
    }
    Some(ClientRunOutcome::Failed { stage })
}

/// Reports a state-machine abort to the server and ends the run.
fn abort(
    chan: &mut dyn Channel,
    round: u64,
    e: &SecAggError,
) -> Result<ClientRunOutcome, NetError> {
    let reason = e.to_string();
    let _ = send_env(
        chan,
        &Envelope::new(StageTag::Abort, round, codec::encode_abort(&reason)),
    );
    Ok(ClientRunOutcome::Aborted { reason })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_respects_the_cap() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(500);
        let mut b = Backoff::new(42, base, cap);
        let delays: Vec<Duration> = (0..12).map(|_| b.next_delay()).collect();
        assert_eq!(b.attempts(), 12);
        for (k, d) in delays.iter().enumerate() {
            // Every wait sits in [0.5, 1.0) of its exponential ceiling.
            let ceiling = base
                .checked_mul(1u32 << k.min(20) as u32)
                .map_or(cap, |c| c.min(cap));
            assert!(*d >= ceiling / 2, "attempt {k}: {d:?} under half ceiling");
            assert!(*d < ceiling, "attempt {k}: {d:?} at/over ceiling");
            assert!(*d <= cap, "attempt {k}: {d:?} over cap");
        }
        // The schedule really grows before the cap bites.
        assert!(delays[4] > delays[0]);
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert!(b.next_delay() < base, "post-reset wait not back at base");
    }

    #[test]
    fn backoff_jitter_decorrelates_clients() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(5);
        let first: Vec<Duration> = (0..8u64)
            .map(|id| Backoff::new(id, base, cap).next_delay())
            .collect();
        let distinct: std::collections::BTreeSet<Duration> = first.iter().copied().collect();
        assert!(distinct.len() >= 6, "jitter barely spreads: {first:?}");
    }
}
