//! Fault-injection hooks for coordinator crash testing.
//!
//! The failover test suite needs to kill a primary coordinator at
//! *precisely* chosen moments — mid-masked-stage, during a broadcast,
//! between the backup's checkpoint ack and the local commit — and then
//! assert the backup finishes the session with a bit-equal model and
//! ledger. A [`FaultPlan`] is threaded through
//! [`CoordinatorConfig`](crate::coordinator::CoordinatorConfig) /
//! [`SessionConfig`](crate::session::SessionConfig); at each named
//! [`KillPoint`] the round machine calls [`FaultPlan::trip`], which
//! either does nothing (the default, compiled down to a no-op `None`
//! check on every real deployment) or returns
//! [`NetError::Injected`]. Crucially the injected error is *not* a
//! [`NetError::SecAgg`] — the coordinator's abort path only broadcasts
//! an `Abort` frame for SecAgg failures, so an injected kill propagates
//! as crash-like silence: clients see a dead connection, exactly as if
//! the process had taken a `SIGKILL`.

use crate::NetError;

/// A named moment in the coordinator's round at which a simulated crash
/// can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillPoint {
    /// While masked-input chunks are being collected (the round's data
    /// plane is mid-flight; nothing of this round is checkpointed).
    MidMaskedStage,
    /// Immediately after the Setup broadcast has been flushed to every
    /// seated client (clients hold round state the coordinator loses).
    DuringBroadcast,
    /// After the backup acked the round's checkpoint but before the
    /// primary committed it locally — the adversarial window for the
    /// ledger's double-count guard: the backup already holds round `r`
    /// as recorded, so the successor must *not* record it again.
    BetweenAckAndCommit,
}

impl KillPoint {
    /// Stable label used in the injected error and telemetry.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            KillPoint::MidMaskedStage => "mid-masked-stage",
            KillPoint::DuringBroadcast => "during-broadcast",
            KillPoint::BetweenAckAndCommit => "between-ack-and-commit",
        }
    }
}

/// A schedule of injected coordinator crashes (at most one per plan).
///
/// Cloneable and cheap: the empty plan is the production default and
/// every `trip` on it is a branch on `None`.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    kill: Option<(u64, KillPoint)>,
}

impl FaultPlan {
    /// The empty plan: no faults, zero overhead.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan that kills the coordinator at `point` of wire round
    /// `round`.
    #[must_use]
    pub fn kill_at(round: u64, point: KillPoint) -> FaultPlan {
        FaultPlan {
            kill: Some((round, point)),
        }
    }

    /// Whether this plan injects anything at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.kill.is_none()
    }

    /// Fires the hook named `point` for wire round `round`.
    ///
    /// # Errors
    ///
    /// [`NetError::Injected`] when the plan schedules a kill here; the
    /// caller must propagate it *without* running its abort broadcast,
    /// so the simulated crash is indistinguishable from a real one.
    pub fn trip(&self, point: KillPoint, round: u64) -> Result<(), NetError> {
        match self.kill {
            Some((r, p)) if r == round && p == point => {
                Err(NetError::Injected(format!("{} @ round {round}", p.label())))
            }
            _ => Ok(()),
        }
    }

    /// Whether an error came from [`FaultPlan::trip`] — the failover
    /// driver uses this to tell a simulated crash from a real failure.
    #[must_use]
    pub fn is_injected(e: &NetError) -> bool {
        matches!(e, NetError::Injected(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        for round in 0..5 {
            for point in [
                KillPoint::MidMaskedStage,
                KillPoint::DuringBroadcast,
                KillPoint::BetweenAckAndCommit,
            ] {
                assert!(plan.trip(point, round).is_ok());
            }
        }
    }

    #[test]
    fn fires_only_at_its_point_and_round() {
        let plan = FaultPlan::kill_at(3, KillPoint::DuringBroadcast);
        assert!(plan.trip(KillPoint::DuringBroadcast, 2).is_ok());
        assert!(plan.trip(KillPoint::MidMaskedStage, 3).is_ok());
        let err = plan.trip(KillPoint::DuringBroadcast, 3).unwrap_err();
        assert!(FaultPlan::is_injected(&err));
        assert!(err.to_string().contains("during-broadcast"));
        // Injected faults must not look like SecAgg aborts (the abort
        // path would otherwise broadcast instead of crashing silently).
        assert!(!matches!(err, NetError::SecAgg(_)));
    }
}
