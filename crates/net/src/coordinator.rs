//! The round coordinator: drives the `dordis-secagg` server state
//! machine over a real transport, stage by stage, with per-stage
//! deadlines.
//!
//! This is the networked replacement for the driver's scripted
//! [`DropoutSchedule`]: here nobody *announces* a dropout — a client
//! that disconnects or stays silent past the stage deadline is
//! *detected* and excluded, exactly as in the deployed system the paper
//! evaluates (§6.1 measures dropout as missed per-stage responses).
//!
//! ## The per-(stage, chunk) data plane
//!
//! Control-plane stages (key advertisement, share routing, consistency,
//! share collection) are round-global. The data plane is chunked
//! (§4.1): masked inputs arrive as one frame per [`ChunkPlan`] chunk,
//! collected by a per-(stage, chunk) state machine — chunk `c`'s frames
//! are decoded, validated, and aggregated into the server's per-chunk
//! state *while chunk `c+1`'s frames are still in flight*, and the
//! per-stage deadline applies per chunk (the clock restarts when a chunk
//! completes). Symmetrically, per-chunk unmasking is interleaved with
//! the noise-share collection when XNoise seed recovery is needed, so
//! the s-comp and comm resources overlap end to end as in Figure 12. A
//! client whose chunk stream stops partway is a detected dropout: U3
//! only admits clients that delivered *every* chunk.
//!
//! [`DropoutSchedule`]: dordis_secagg::driver::DropoutSchedule

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use dordis_pipeline::ChunkPlan;
use dordis_secagg::driver::{RoundStats, StageTraffic};
use dordis_secagg::server::{RoundOutcome, Server};
use dordis_secagg::{ClientId, RoundParams, SecAggError, ThreatModel};

use crate::codec::{
    self, decode_advertised_keys, decode_consistency_signature, decode_encrypted_shares,
    decode_list, decode_masked_input, decode_noise_share_response, decode_unmasking_response,
    encode_list, Encode, Envelope, FrameContext, StageTag,
};
use crate::transport::{recv_env, send_env, Acceptor, Channel};
use crate::NetError;

/// Configuration of one coordinated round.
pub struct CoordinatorConfig {
    /// Protocol parameters; `params.clients` is the sampled set — ids
    /// that never join are advertise-stage dropouts.
    pub params: RoundParams,
    /// How long to wait for the full sampled set to join before starting
    /// with whoever arrived.
    pub join_timeout: Duration,
    /// Per-stage response deadline; a silent client past this is a
    /// detected dropout. During masked-input collection the deadline
    /// applies *per chunk*: the clock restarts whenever a chunk
    /// completes.
    pub stage_timeout: Duration,
    /// Requested chunk count `m` for the data plane (clamped to ≥ 1).
    /// The realized count after byte alignment may be smaller; clients
    /// re-derive the identical plan from this count via the Setup
    /// broadcast.
    pub chunks: usize,
    /// Injected s-comp cost for the *whole vector*, spread over chunks
    /// proportionally to their element counts and spent once per chunk
    /// at aggregation and once at unmasking. Emulates the server-side
    /// compute of models too large to run in-repo, so benches and tests
    /// can realize Figure 12's comm/compute overlap on a loopback
    /// transport. `None` injects nothing (production).
    pub chunk_compute: Option<Duration>,
}

impl CoordinatorConfig {
    /// An unchunked config with no injected compute — the pre-chunking
    /// behaviour.
    #[must_use]
    pub fn single(params: RoundParams, join_timeout: Duration, stage_timeout: Duration) -> Self {
        CoordinatorConfig {
            params,
            join_timeout,
            stage_timeout,
            chunks: 1,
            chunk_compute: None,
        }
    }
}

/// What the coordinator observed about one departed client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DropKind {
    /// Never joined the round.
    NeverJoined,
    /// Connection closed (crash / kill).
    Disconnected,
    /// Joined but missed a stage deadline while connected.
    DeadlineMissed,
    /// Sent an explicit abort (detected an inconsistency).
    Aborted,
    /// Sent garbage or an out-of-protocol message.
    ProtocolViolation,
}

/// A detected departure: who, at which stage (and chunk, for data-plane
/// stages), and how.
#[derive(Clone, Debug)]
pub struct DetectedDropout {
    /// The client.
    pub client: ClientId,
    /// Stage name at which the departure was detected.
    pub stage: &'static str,
    /// Chunk the collection machine was on when it detected the
    /// departure (None for round-global stages).
    pub chunk: Option<u16>,
    /// What was observed.
    pub kind: DropKind,
}

/// Result of a coordinated round.
pub struct NetRoundReport {
    /// The protocol outcome (same type the in-memory driver returns).
    pub outcome: RoundOutcome,
    /// Per-stage traffic, measured as actual framed bytes on the wire
    /// (envelope headers included — unlike the driver's `wire_bytes()`
    /// accounting, which counts message bodies only).
    pub stats: RoundStats,
    /// Every detected departure, in detection order.
    pub dropouts: Vec<DetectedDropout>,
    /// Realized chunk count of the round's data plane.
    pub chunks: usize,
}

/// Per-stage uplink accumulator.
#[derive(Default)]
struct Traffic {
    total: u64,
    max: u64,
}

impl Traffic {
    fn add(&mut self, bytes: u64) {
        self.total += bytes;
        self.max = self.max.max(bytes);
    }
}

/// Live connections, keyed by authenticated-at-join client id.
type Peers = BTreeMap<ClientId, Box<dyn Channel>>;

/// Background work a collection loop interleaves between polls (chunk
/// unmasking during noise-share collection). Errors abort the round.
type IdleWork<'a> = dyn FnMut(&mut Server) -> Result<(), SecAggError> + 'a;

/// Runs one full round over `acceptor`.
///
/// Accepts joins until every sampled client is present or
/// `join_timeout` passes, then drives the stages. Clients that vanish
/// mid-round are detected per stage (per chunk, on the data plane) and
/// the protocol continues as long as the threshold holds.
///
/// # Errors
///
/// [`NetError::SecAgg`] when the protocol aborts (e.g. below
/// threshold); transport errors only for coordinator-side failures
/// (individual client failures are dropouts, not errors).
pub fn run_coordinator(
    acceptor: &mut dyn Acceptor,
    cfg: &CoordinatorConfig,
) -> Result<NetRoundReport, NetError> {
    cfg.params.validate().map_err(NetError::SecAgg)?;
    let round = cfg.params.round;
    let requested_chunks = cfg.chunks.clamp(1, usize::from(u16::MAX));
    let plan = ChunkPlan::aligned(
        cfg.params.vector_len,
        requested_chunks,
        cfg.params.bit_width,
    )
    .map_err(|e| NetError::Protocol(format!("chunk plan: {e}")))?;
    let mut stats = RoundStats::default();
    let mut dropouts: Vec<DetectedDropout> = Vec::new();

    // ---- Join phase. ----
    let mut peers = accept_joins(acceptor, cfg)?;
    for &id in &cfg.params.clients {
        if !peers.contains_key(&id) {
            dropouts.push(DetectedDropout {
                client: id,
                stage: "Join",
                chunk: None,
                kind: DropKind::NeverJoined,
            });
        }
    }

    let mut server =
        Server::with_chunks(cfg.params.clone(), plan.clone()).map_err(NetError::SecAgg)?;
    let mut no_idle = |_: &mut Server| Ok(());

    // ---- Setup broadcast (params + the requested chunk count). ----
    let setup = Envelope::new(
        StageTag::Setup,
        round,
        codec::encode_setup(&cfg.params, requested_chunks as u16),
    );
    broadcast(&mut peers, &setup, &mut dropouts, "Setup");

    let joined: Vec<ClientId> = peers.keys().copied().collect();

    // ---- Stage 0: AdvertiseKeys. ----
    let mut up = Traffic::default();
    let bodies = collect_stage(
        &mut peers,
        &joined,
        StageTag::AdvertiseKeys,
        round,
        cfg.stage_timeout,
        "AdvertiseKeys",
        &mut dropouts,
        &mut up,
        &mut server,
        &mut no_idle,
    )
    .map_err(|e| abort_round(&mut peers, round, e))?;
    let mut advs = Vec::with_capacity(bodies.len());
    for (id, body) in &bodies {
        match decode_advertised_keys(body) {
            Ok(a) if a.client == *id => advs.push(a),
            _ => drop_peer(
                &mut peers,
                *id,
                "AdvertiseKeys",
                None,
                DropKind::ProtocolViolation,
                &mut dropouts,
            ),
        }
    }
    let roster = server.collect_advertisements(advs).map_err(|e| {
        abort_all(&mut peers, round, &e);
        NetError::SecAgg(e)
    })?;
    let roster_env = Envelope::new(StageTag::Roster, round, encode_list(&roster));
    let down = broadcast(&mut peers, &roster_env, &mut dropouts, "AdvertiseKeys");
    push_stage(&mut stats, "AdvertiseKeys", &up, down);

    // ---- Stage 1: ShareKeys. ----
    let expected: Vec<ClientId> = roster
        .iter()
        .map(|a| a.client)
        .filter(|id| peers.contains_key(id))
        .collect();
    let mut up = Traffic::default();
    let bodies = collect_stage(
        &mut peers,
        &expected,
        StageTag::ShareKeys,
        round,
        cfg.stage_timeout,
        "ShareKeys",
        &mut dropouts,
        &mut up,
        &mut server,
        &mut no_idle,
    )
    .map_err(|e| abort_round(&mut peers, round, e))?;
    let mut all_cts = Vec::new();
    for (id, body) in &bodies {
        match decode_list(body, decode_encrypted_shares) {
            Ok(cts) if cts.iter().all(|ct| ct.from == *id) => all_cts.extend(cts),
            _ => drop_peer(
                &mut peers,
                *id,
                "ShareKeys",
                None,
                DropKind::ProtocolViolation,
                &mut dropouts,
            ),
        }
    }
    let mut inboxes = server.route_shares(all_cts).map_err(|e| {
        abort_all(&mut peers, round, &e);
        NetError::SecAgg(e)
    })?;
    let mut down = Traffic::default();
    let inbox_ids: Vec<ClientId> = peers.keys().copied().collect();
    for id in inbox_ids {
        let cts = inboxes.remove(&id).unwrap_or_default();
        let env = Envelope::new(StageTag::Inbox, round, encode_list(&cts));
        down.add(env.encode().len() as u64);
        send_or_drop(&mut peers, id, &env, "ShareKeys", &mut dropouts);
    }
    push_stage(&mut stats, "ShareKeys", &up, down);

    // ---- Stage 2: MaskedInputCollection, per (stage, chunk). ----
    let u2: BTreeSet<ClientId> = server.u2().iter().copied().collect();
    let expected: Vec<ClientId> = peers.keys().copied().filter(|id| u2.contains(id)).collect();
    let up = collect_masked_chunks(
        &mut peers,
        &expected,
        round,
        cfg,
        &plan,
        &mut server,
        &mut dropouts,
    )
    .map_err(|e| abort_round(&mut peers, round, e))?;
    let u3 = server.finalize_masked().map_err(|e| {
        abort_all(&mut peers, round, &e);
        NetError::SecAgg(e)
    })?;
    let u3_env = Envelope::new(
        StageTag::SurvivorSet,
        round,
        dordis_secagg::messages::IdList(u3.clone()).encoded(),
    );
    let down = broadcast(&mut peers, &u3_env, &mut dropouts, "MaskedInputCollection");
    push_stage(&mut stats, "MaskedInputCollection", &up, down);

    // ---- Stage 3: ConsistencyCheck (malicious only). ----
    if cfg.params.threat_model == ThreatModel::Malicious {
        let expected: Vec<ClientId> = u3
            .iter()
            .copied()
            .filter(|v| peers.contains_key(v))
            .collect();
        let mut up = Traffic::default();
        let bodies = collect_stage(
            &mut peers,
            &expected,
            StageTag::ConsistencySig,
            round,
            cfg.stage_timeout,
            "ConsistencyCheck",
            &mut dropouts,
            &mut up,
            &mut server,
            &mut no_idle,
        )
        .map_err(|e| abort_round(&mut peers, round, e))?;
        let mut sigs = Vec::new();
        for (id, body) in &bodies {
            match decode_consistency_signature(body) {
                Ok(s) if s.client == *id => sigs.push(s),
                _ => drop_peer(
                    &mut peers,
                    *id,
                    "ConsistencyCheck",
                    None,
                    DropKind::ProtocolViolation,
                    &mut dropouts,
                ),
            }
        }
        let list = server.collect_consistency(sigs).map_err(|e| {
            abort_all(&mut peers, round, &e);
            NetError::SecAgg(e)
        })?;
        let env = Envelope::new(
            StageTag::SignatureList,
            round,
            codec::encode_signature_list(&list),
        );
        let down = broadcast(&mut peers, &env, &mut dropouts, "ConsistencyCheck");
        push_stage(&mut stats, "ConsistencyCheck", &up, down);
    }

    // ---- Stage 4: Unmasking (share collection is round-global). ----
    let expected: Vec<ClientId> = u3
        .iter()
        .copied()
        .filter(|v| peers.contains_key(v))
        .collect();
    let mut up = Traffic::default();
    let bodies = collect_stage(
        &mut peers,
        &expected,
        StageTag::Unmasking,
        round,
        cfg.stage_timeout,
        "Unmasking",
        &mut dropouts,
        &mut up,
        &mut server,
        &mut no_idle,
    )
    .map_err(|e| abort_round(&mut peers, round, e))?;
    let mut responses = Vec::new();
    for (id, body) in &bodies {
        match decode_unmasking_response(body) {
            Ok(r) if r.client == *id => responses.push(r),
            _ => drop_peer(
                &mut peers,
                *id,
                "Unmasking",
                None,
                DropKind::ProtocolViolation,
                &mut dropouts,
            ),
        }
    }
    server.reconstruct_unmasking(responses).map_err(|e| {
        abort_all(&mut peers, round, &e);
        NetError::SecAgg(e)
    })?;
    let u5 = server.u5().to_vec();

    // Per-chunk unmasking advances between noise-share polls (chunk
    // c + 1 can be collected/unmasked while chunk c's compute runs).
    let total_chunks = plan.chunks();
    let mut next_unmask = 0usize;
    let chunk_compute = cfg.chunk_compute;
    let plan_ref = &plan;
    let mut unmask_step = move |server: &mut Server| -> Result<(), SecAggError> {
        if next_unmask < total_chunks {
            server.unmask_chunk(next_unmask)?;
            chunk_sleep(chunk_compute, plan_ref, next_unmask);
            next_unmask += 1;
        }
        Ok(())
    };

    // ---- Stage 5: ExcessiveNoiseRemoval (only if needed). ----
    if server.pending_seed_owners().is_empty() {
        let down_u5 = Traffic::default();
        push_stage(&mut stats, "Unmasking", &up, down_u5);
    } else {
        let u5_env = Envelope::new(
            StageTag::ReadySet,
            round,
            dordis_secagg::messages::IdList(u5.clone()).encoded(),
        );
        let down = broadcast(&mut peers, &u5_env, &mut dropouts, "Unmasking");
        push_stage(&mut stats, "Unmasking", &up, down);

        let expected: Vec<ClientId> = u5
            .iter()
            .copied()
            .filter(|v| peers.contains_key(v))
            .collect();
        let mut up = Traffic::default();
        let bodies = collect_stage(
            &mut peers,
            &expected,
            StageTag::NoiseShares,
            round,
            cfg.stage_timeout,
            "ExcessiveNoiseRemoval",
            &mut dropouts,
            &mut up,
            &mut server,
            &mut unmask_step,
        )
        .map_err(|e| abort_round(&mut peers, round, e))?;
        let mut responses = Vec::new();
        for (id, body) in &bodies {
            match decode_noise_share_response(body) {
                Ok(r) if r.client == *id => responses.push(r),
                _ => drop_peer(
                    &mut peers,
                    *id,
                    "ExcessiveNoiseRemoval",
                    None,
                    DropKind::ProtocolViolation,
                    &mut dropouts,
                ),
            }
        }
        server.collect_noise_shares(responses).map_err(|e| {
            abort_all(&mut peers, round, &e);
            NetError::SecAgg(e)
        })?;
        push_stage(&mut stats, "ExcessiveNoiseRemoval", &up, Traffic::default());
    }

    // Unmask whatever chunks the idle interleaving did not reach.
    for _ in 0..total_chunks {
        unmask_step(&mut server).map_err(|e| {
            abort_all(&mut peers, round, &e);
            NetError::SecAgg(e)
        })?;
    }

    // ---- Finished broadcast. ----
    let fin = Envelope::new(
        StageTag::Finished,
        round,
        dordis_secagg::messages::IdList(u3.clone()).encoded(),
    );
    broadcast(&mut peers, &fin, &mut dropouts, "Finished");

    debug_assert!(server.privacy_invariant_holds());
    for d in &dropouts {
        if d.kind == DropKind::Aborted {
            stats.aborted.push(d.client);
        }
    }
    Ok(NetRoundReport {
        outcome: server.finish(),
        stats,
        dropouts,
        chunks: total_chunks,
    })
}

/// Maps a failed stage to a round abort (notifying live peers when the
/// failure is a protocol-level one).
fn abort_round(peers: &mut Peers, round: u64, e: NetError) -> NetError {
    if let NetError::SecAgg(err) = &e {
        abort_all(peers, round, err);
    }
    e
}

/// Sleeps the injected per-chunk s-comp cost: the whole-vector cost
/// scaled by the chunk's share of the elements.
fn chunk_sleep(chunk_compute: Option<Duration>, plan: &ChunkPlan, chunk: usize) {
    let Some(total) = chunk_compute else { return };
    let d = plan.vector_len().max(1);
    let frac = plan.chunk_len(chunk) as f64 / d as f64;
    let dur = total.mul_f64(frac);
    if !dur.is_zero() {
        std::thread::sleep(dur);
    }
}

/// Accepts connections and their Join envelopes until every sampled id
/// is present or the join deadline passes.
fn accept_joins(acceptor: &mut dyn Acceptor, cfg: &CoordinatorConfig) -> Result<Peers, NetError> {
    let deadline = Instant::now() + cfg.join_timeout;
    let sampled: BTreeSet<ClientId> = cfg.params.clients.iter().copied().collect();
    let mut peers: Peers = BTreeMap::new();
    while peers.len() < sampled.len() {
        let mut chan = match acceptor.accept(deadline) {
            Ok(c) => c,
            Err(NetError::Timeout) => break,
            Err(e) => return Err(e),
        };
        // The Join must arrive promptly once connected.
        let join_deadline = Instant::now()
            + cfg
                .stage_timeout
                .min(deadline.saturating_duration_since(Instant::now()));
        // Joins carry round 0: the client learns the real round id from
        // the Setup broadcast.
        match recv_env(chan.as_mut(), join_deadline) {
            Ok(env) if env.stage == StageTag::Join => {
                match codec::decode_join(&env.body) {
                    Ok(id) if sampled.contains(&id) && !peers.contains_key(&id) => {
                        peers.insert(id, chan);
                    }
                    Ok(id) => {
                        let reason = if sampled.contains(&id) {
                            "duplicate join"
                        } else {
                            "not in the sampled set"
                        };
                        let _ = send_env(
                            chan.as_mut(),
                            &Envelope::new(
                                StageTag::Abort,
                                cfg.params.round,
                                codec::encode_abort(reason),
                            ),
                        );
                    }
                    Err(_) => {
                        // Unidentifiable garbage: not a participant.
                    }
                }
            }
            Err(NetError::Version { got, expected }) => {
                // A peer speaking another wire version must be told to
                // upgrade, not silently counted as a never-join.
                // Best-effort: its decoder may reject our frame too,
                // but the connection closes with the reason on the wire.
                let _ = send_env(
                    chan.as_mut(),
                    &Envelope::new(
                        StageTag::Abort,
                        cfg.params.round,
                        codec::encode_abort(&format!(
                            "wire version mismatch: you speak v{got}, this coordinator v{expected}"
                        )),
                    ),
                );
            }
            _ => {
                // Wrong first message or nothing at all: not a protocol
                // participant.
            }
        }
    }
    Ok(peers)
}

/// The per-(stage, chunk) masked-input collector. Chunk `c + 1`'s frames
/// accumulate (from fast clients and channel buffers) while chunk `c` is
/// decoded, validated, and aggregated into the server's per-chunk state;
/// the stage deadline restarts per chunk. A client whose stream stops —
/// disconnect, garbage, or silence past the active chunk's deadline — is
/// dropped from every remaining chunk; its partial deliveries never
/// reach a sum because U3 requires all chunks.
fn collect_masked_chunks(
    peers: &mut Peers,
    expected: &[ClientId],
    round: u64,
    cfg: &CoordinatorConfig,
    plan: &ChunkPlan,
    server: &mut Server,
    dropouts: &mut Vec<DetectedDropout>,
) -> Result<Traffic, NetError> {
    let m = plan.chunks();
    let stage_name = "MaskedInputCollection";
    let base: BTreeSet<ClientId> = expected
        .iter()
        .copied()
        .filter(|id| peers.contains_key(id))
        .collect();
    let mut pendings: Vec<BTreeSet<ClientId>> = vec![base; m];
    let mut bodies: Vec<BTreeMap<ClientId, Vec<u8>>> = vec![BTreeMap::new(); m];
    let mut per_client: BTreeMap<ClientId, u64> = BTreeMap::new();
    let mut active = 0usize;
    let mut deadline = Instant::now() + cfg.stage_timeout;
    let poll = Duration::from_millis(10);

    while active < m {
        pendings[active].retain(|id| peers.contains_key(id));
        if pendings[active].is_empty() {
            // Chunk complete: aggregate it while later chunks keep
            // arriving into the transport buffers.
            let chunk_bodies = std::mem::take(&mut bodies[active]);
            let ctx = FrameContext {
                stage: StageTag::MaskedInput,
                round,
                chunk: active as u16,
            };
            let mut inputs = Vec::with_capacity(chunk_bodies.len());
            for (id, body) in &chunk_bodies {
                if !peers.contains_key(id) {
                    continue;
                }
                match decode_masked_input(body, plan.bit_width(), plan.chunk_len(active), ctx) {
                    Ok(mi) if mi.client == *id => inputs.push(mi),
                    _ => {
                        remove_everywhere(&mut pendings, *id);
                        drop_peer(
                            peers,
                            *id,
                            stage_name,
                            Some(active as u16),
                            DropKind::ProtocolViolation,
                            dropouts,
                        );
                    }
                }
            }
            server
                .collect_masked_chunk(active, inputs)
                .map_err(NetError::SecAgg)?;
            chunk_sleep(cfg.chunk_compute, plan, active);
            active += 1;
            deadline = Instant::now() + cfg.stage_timeout;
            continue;
        }
        if Instant::now() >= deadline {
            let late: Vec<ClientId> = pendings[active].iter().copied().collect();
            for id in late {
                remove_everywhere(&mut pendings, id);
                drop_peer(
                    peers,
                    id,
                    stage_name,
                    Some(active as u16),
                    DropKind::DeadlineMissed,
                    dropouts,
                );
            }
            continue;
        }
        let ids: Vec<ClientId> = pendings[active].iter().copied().collect();
        for id in ids {
            let Some(chan) = peers.get_mut(&id) else {
                remove_everywhere(&mut pendings, id);
                continue;
            };
            let slice = (Instant::now() + poll).min(deadline);
            match chan.recv_deadline(slice) {
                Ok(frame) => {
                    *per_client.entry(id).or_default() += frame.len() as u64;
                    match Envelope::decode(&frame) {
                        Ok(env)
                            if env.stage == StageTag::MaskedInput
                                && env.round == round
                                && usize::from(env.chunk) < m =>
                        {
                            let c = usize::from(env.chunk);
                            pendings[c].remove(&id);
                            bodies[c].insert(id, env.body);
                        }
                        Ok(env) if env.stage == StageTag::Abort => {
                            remove_everywhere(&mut pendings, id);
                            drop_peer(
                                peers,
                                id,
                                stage_name,
                                Some(active as u16),
                                DropKind::Aborted,
                                dropouts,
                            );
                        }
                        _ => {
                            remove_everywhere(&mut pendings, id);
                            drop_peer(
                                peers,
                                id,
                                stage_name,
                                Some(active as u16),
                                DropKind::ProtocolViolation,
                                dropouts,
                            );
                        }
                    }
                }
                Err(NetError::Timeout) => {}
                Err(_) => {
                    remove_everywhere(&mut pendings, id);
                    drop_peer(
                        peers,
                        id,
                        stage_name,
                        Some(active as u16),
                        DropKind::Disconnected,
                        dropouts,
                    );
                }
            }
        }
    }
    let mut up = Traffic::default();
    for &bytes in per_client.values() {
        up.add(bytes);
    }
    Ok(up)
}

fn remove_everywhere(pendings: &mut [BTreeSet<ClientId>], id: ClientId) {
    for p in pendings.iter_mut() {
        p.remove(&id);
    }
}

/// Collects exactly one body per expected client for `want`, until the
/// per-stage deadline. Silent or disconnected clients become detected
/// dropouts and are removed from `peers`. `idle` runs once per poll
/// sweep so pending per-chunk work (unmasking) overlaps the wait.
///
/// # Errors
///
/// Only `idle` failures (protocol aborts) — per-client failures are
/// dropouts, not errors.
#[allow(clippy::too_many_arguments)]
fn collect_stage(
    peers: &mut Peers,
    expected: &[ClientId],
    want: StageTag,
    round: u64,
    stage_timeout: Duration,
    stage_name: &'static str,
    dropouts: &mut Vec<DetectedDropout>,
    up: &mut Traffic,
    server: &mut Server,
    idle: &mut IdleWork<'_>,
) -> Result<BTreeMap<ClientId, Vec<u8>>, NetError> {
    let mut deadline = Instant::now() + stage_timeout;
    let mut pending: BTreeSet<ClientId> = expected
        .iter()
        .copied()
        .filter(|id| peers.contains_key(id))
        .collect();
    let mut bodies: BTreeMap<ClientId, Vec<u8>> = BTreeMap::new();
    let poll = Duration::from_millis(10);
    while !pending.is_empty() && Instant::now() < deadline {
        // Interleaved background work (per-chunk unmasking, possibly
        // with injected compute) must not eat the peers' response
        // window: credit its wall time back to the stage deadline.
        let idle_start = Instant::now();
        idle(server).map_err(NetError::SecAgg)?;
        deadline += idle_start.elapsed();
        let ids: Vec<ClientId> = pending.iter().copied().collect();
        for id in ids {
            let Some(chan) = peers.get_mut(&id) else {
                pending.remove(&id);
                continue;
            };
            let slice = (Instant::now() + poll).min(deadline);
            match chan.recv_deadline(slice) {
                Ok(frame) => {
                    up.add(frame.len() as u64);
                    match Envelope::decode(&frame) {
                        Ok(env) if env.stage == want && env.round == round => {
                            bodies.insert(id, env.body);
                            pending.remove(&id);
                        }
                        Ok(env) if env.stage == StageTag::Abort => {
                            pending.remove(&id);
                            drop_peer(peers, id, stage_name, None, DropKind::Aborted, dropouts);
                        }
                        _ => {
                            pending.remove(&id);
                            drop_peer(
                                peers,
                                id,
                                stage_name,
                                None,
                                DropKind::ProtocolViolation,
                                dropouts,
                            );
                        }
                    }
                }
                Err(NetError::Timeout) => {}
                Err(_) => {
                    pending.remove(&id);
                    drop_peer(
                        peers,
                        id,
                        stage_name,
                        None,
                        DropKind::Disconnected,
                        dropouts,
                    );
                }
            }
        }
    }
    for id in pending {
        drop_peer(
            peers,
            id,
            stage_name,
            None,
            DropKind::DeadlineMissed,
            dropouts,
        );
    }
    Ok(bodies)
}

/// Removes a peer and records the detection.
fn drop_peer(
    peers: &mut Peers,
    id: ClientId,
    stage: &'static str,
    chunk: Option<u16>,
    kind: DropKind,
    dropouts: &mut Vec<DetectedDropout>,
) {
    peers.remove(&id);
    dropouts.push(DetectedDropout {
        client: id,
        stage,
        chunk,
        kind,
    });
}

/// Broadcasts an envelope to every live peer; send failures become
/// detected disconnects. Returns downlink traffic.
fn broadcast(
    peers: &mut Peers,
    env: &Envelope,
    dropouts: &mut Vec<DetectedDropout>,
    stage: &'static str,
) -> Traffic {
    let frame = env.encode();
    let mut down = Traffic::default();
    let ids: Vec<ClientId> = peers.keys().copied().collect();
    for id in ids {
        if let Some(chan) = peers.get_mut(&id) {
            if chan.send(&frame).is_err() {
                drop_peer(peers, id, stage, None, DropKind::Disconnected, dropouts);
            } else {
                down.add(frame.len() as u64);
            }
        }
    }
    down
}

/// Sends to one peer; failure becomes a detected disconnect.
fn send_or_drop(
    peers: &mut Peers,
    id: ClientId,
    env: &Envelope,
    stage: &'static str,
    dropouts: &mut Vec<DetectedDropout>,
) {
    if let Some(chan) = peers.get_mut(&id) {
        if send_env(chan.as_mut(), env).is_err() {
            drop_peer(peers, id, stage, None, DropKind::Disconnected, dropouts);
        }
    }
}

/// Best-effort abort notification to everyone still connected.
fn abort_all(peers: &mut Peers, round: u64, err: &SecAggError) {
    let env = Envelope::new(
        StageTag::Abort,
        round,
        codec::encode_abort(&err.to_string()),
    );
    let frame = env.encode();
    for chan in peers.values_mut() {
        let _ = chan.send(&frame);
    }
}

fn push_stage(stats: &mut RoundStats, name: &'static str, up: &Traffic, down: Traffic) {
    stats.stages.push(StageTraffic {
        stage: name,
        uplink_total: up.total,
        uplink_max: up.max,
        downlink_total: down.total,
        downlink_max: down.max,
    });
}
