//! The round coordinator: drives the `dordis-secagg` server state
//! machine over a real transport, stage by stage, with per-stage
//! deadlines.
//!
//! This is the networked replacement for the driver's scripted
//! [`DropoutSchedule`]: here nobody *announces* a dropout — a client
//! that disconnects or stays silent past the stage deadline is
//! *detected* and excluded, exactly as in the deployed system the paper
//! evaluates (§6.1 measures dropout as missed per-stage responses).
//!
//! ## The round machine
//!
//! All per-round state — the secagg [`Server`], the [`ChunkPlan`], the
//! traffic/dropout accounting, and the round id every frame is checked
//! against — lives in a [`RoundMachine`]. A
//! [`Session`](crate::session::Session) constructs one machine per
//! round and runs them back to back over the same persistent
//! connections; [`run_coordinator`] is the single-round convenience
//! wrapper (one session, one round). A frame whose envelope carries a
//! *different* round id than the machine's is never parsed into the
//! round's state: frames from older rounds (a slow peer catching up
//! after a session transition) are discarded and counted in
//! [`NetRoundReport::stale_frames`]; frames claiming future rounds are
//! protocol violations.
//!
//! ## The per-(stage, chunk) data plane
//!
//! Control-plane stages (key advertisement, share routing, consistency,
//! share collection) are round-global. The data plane is chunked
//! (§4.1): masked inputs arrive as one frame per [`ChunkPlan`] chunk,
//! collected by a per-(stage, chunk) state machine — chunk `c`'s frames
//! are decoded, validated, and aggregated into the server's per-chunk
//! state *while chunk `c+1`'s frames are still in flight*, and the
//! per-stage deadline applies per chunk (the clock restarts when a chunk
//! completes). Symmetrically, per-chunk unmasking is interleaved with
//! the noise-share collection when XNoise seed recovery is needed, so
//! the s-comp and comm resources overlap end to end as in Figure 12. A
//! client whose chunk stream stops partway is a detected dropout: U3
//! only admits clients that delivered *every* chunk.
//!
//! ## Readiness-driven collection
//!
//! By default ([`CollectMode::Reactor`]) the collection loops are driven
//! by [`reactor`](crate::reactor) events: the coordinator thread sleeps
//! in `epoll_pwait` until a frame, a disconnect, or a deadline is
//! actually ready, so one thread serves hundreds of chunk-streaming
//! clients with `O(events)` wake-ups. The legacy round-robin sweep over
//! blocking channels (`recv_deadline` in [`CoordinatorConfig::tick`]
//! slices, `O(clients × ticks)`) survives as
//! [`CollectMode::PollSweep`] for the comparison benches. Both modes run
//! the identical chunk state machine and produce bit-equal outcomes.
//!
//! [`DropoutSchedule`]: dordis_secagg::driver::DropoutSchedule

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dordis_compute::JobOutcome;
use dordis_pipeline::ChunkPlan;
use dordis_secagg::driver::{RoundStats, StageTraffic};
use dordis_secagg::server::{unmask_chunk_task, RoundOutcome, Server};
use dordis_secagg::{ClientId, RoundParams, SecAggError, ThreatModel};
use dordis_telemetry::{MetricsSnapshot, Telemetry};

use crate::compute::ComputePlane;
use crate::faults::{FaultPlan, KillPoint};

use crate::codec::{
    self, decode_advertised_keys, decode_consistency_signature, decode_encrypted_shares,
    decode_list, decode_masked_input, decode_noise_share_response, decode_unmasking_response,
    encode_list, Encode, Envelope, EnvelopeView, FrameContext, StageTag, HEADER_BYTES,
};
use crate::reactor::{Event, EventedChannel, Reactor, ReactorStats, Token};
use crate::session::{Seating, Session, SessionConfig};
use crate::transport::{send_env, wire_message, Acceptor};
use crate::NetError;

/// How the coordinator discovers frames and deadlines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CollectMode {
    /// Readiness-driven: one `epoll_pwait` sleep per batch of events —
    /// `O(events)` wake-ups per round. The default.
    #[default]
    Reactor,
    /// The legacy round-robin sweep: one blocking `recv_deadline` slice
    /// per pending client per tick — `O(clients × ticks)`. Kept for the
    /// `reactor_scale` comparison bench and as a fallback.
    PollSweep,
}

/// Configuration of one coordinated round.
pub struct CoordinatorConfig {
    /// Protocol parameters; `params.clients` is the round's cohort — ids
    /// that never join are advertise-stage dropouts. In a session the
    /// cohort (and `params.round`) come from the session's per-round
    /// seating, not from a fixed roster.
    pub params: RoundParams,
    /// How long to wait for the full sampled set to join before starting
    /// with whoever arrived.
    pub join_timeout: Duration,
    /// Per-stage response deadline; a silent client past this is a
    /// detected dropout. During masked-input collection the deadline
    /// applies *per chunk*: the clock restarts whenever a chunk
    /// completes.
    pub stage_timeout: Duration,
    /// Requested chunk count `m` for the data plane (clamped to ≥ 1).
    /// The realized count after byte alignment may be smaller; clients
    /// re-derive the identical plan from this count via the Setup
    /// broadcast.
    pub chunks: usize,
    /// Injected s-comp cost for the *whole vector*, spread over chunks
    /// proportionally to their element counts and spent once per chunk
    /// at aggregation and once at unmasking. Emulates the server-side
    /// compute of models too large to run in-repo, so benches and tests
    /// can realize Figure 12's comm/compute overlap on a loopback
    /// transport. `None` injects nothing (production).
    pub chunk_compute: Option<Duration>,
    /// Scheduling granularity: the reactor's timer-wheel tick, and the
    /// poll-slice length of the legacy sweep (formerly three scattered
    /// 10 ms constants).
    pub tick: Duration,
    /// Which collection engine drives the round.
    pub mode: CollectMode,
    /// Compute-plane worker threads for per-chunk unmask jobs. `0`
    /// (the default) keeps the serial reference path: mask expansion
    /// and chunk aggregation run inline on the coordinator thread.
    /// With `N > 0` those jobs run on `N` pooled workers and their
    /// completions are drained between polls — bit-equal outcomes,
    /// pinned by the equivalence suites.
    pub workers: usize,
    /// Observability sink: span timeline + metrics registry. The
    /// default ([`Telemetry::disabled`]) makes every instrumentation
    /// point a no-op.
    pub telemetry: Telemetry,
    /// The *union* cohort size broadcast in Setup. Equal to
    /// `params.clients.len()` for an unsharded round; a sharded session
    /// overrides it with the full seated-cohort size so clients derive
    /// XNoise planning and update encoding from the cohort the privacy
    /// ledger sees, not from their shard's roster.
    pub cohort: u16,
    /// Global ingress budget in bytes for the reactor's shared frame
    /// pool ([`crate::pool::BytePool`]). `0` (the default) disables
    /// backpressure — unlimited buffering, the bit-equal reference.
    /// With a budget, a connection whose buffered bytes cross its fair
    /// share has its read interest dropped until the coordinator's
    /// recycles drain it below the low-water mark, so a frame burst
    /// degrades to pacing instead of unbounded memory.
    pub ingress_budget: u64,
    /// Injected coordinator crashes for the failover test harness
    /// ([`FaultPlan::none`], the default, is a no-op on every hook).
    pub faults: FaultPlan,
}

impl CoordinatorConfig {
    /// Default scheduling granularity (see [`CoordinatorConfig::tick`]).
    pub const DEFAULT_TICK: Duration = Duration::from_millis(10);

    /// A config with the default tick and collection mode.
    #[must_use]
    pub fn new(
        params: RoundParams,
        join_timeout: Duration,
        stage_timeout: Duration,
        chunks: usize,
        chunk_compute: Option<Duration>,
    ) -> Self {
        let cohort = params.clients.len().min(usize::from(u16::MAX)) as u16;
        CoordinatorConfig {
            params,
            join_timeout,
            stage_timeout,
            chunks,
            chunk_compute,
            tick: Self::DEFAULT_TICK,
            mode: CollectMode::default(),
            workers: 0,
            telemetry: Telemetry::disabled(),
            cohort,
            ingress_budget: 0,
            faults: FaultPlan::none(),
        }
    }

    /// An unchunked config with no injected compute — the pre-chunking
    /// behaviour.
    #[must_use]
    pub fn single(params: RoundParams, join_timeout: Duration, stage_timeout: Duration) -> Self {
        Self::new(params, join_timeout, stage_timeout, 1, None)
    }

    /// Overrides the collection engine (builder-style).
    #[must_use]
    pub fn with_mode(mut self, mode: CollectMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the compute-plane worker count (builder-style).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Installs a telemetry sink (builder-style).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Overrides the union cohort size broadcast in Setup
    /// (builder-style) — sharded sessions pass the full seated-cohort
    /// size here while `params.clients` holds the shard roster.
    #[must_use]
    pub fn with_cohort(mut self, cohort: u16) -> Self {
        self.cohort = cohort;
        self
    }

    /// Sets the reactor's global ingress budget in bytes
    /// (builder-style); `0` disables backpressure.
    #[must_use]
    pub fn with_ingress_budget(mut self, bytes: u64) -> Self {
        self.ingress_budget = bytes;
        self
    }
}

/// What the coordinator observed about one departed client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DropKind {
    /// Never joined the round.
    NeverJoined,
    /// Connection closed (crash / kill).
    Disconnected,
    /// Joined but missed a stage deadline while connected.
    DeadlineMissed,
    /// Sent an explicit abort (detected an inconsistency).
    Aborted,
    /// Sent garbage or an out-of-protocol message.
    ProtocolViolation,
}

/// A detected departure: who, at which stage (and chunk, for data-plane
/// stages), and how.
#[derive(Clone, Debug)]
pub struct DetectedDropout {
    /// The client.
    pub client: ClientId,
    /// Stage name at which the departure was detected.
    pub stage: &'static str,
    /// Chunk the collection machine was on when it detected the
    /// departure (None for round-global stages).
    pub chunk: Option<u16>,
    /// What was observed.
    pub kind: DropKind,
}

/// Result of a coordinated round.
pub struct NetRoundReport {
    /// The round this report describes (the session's counter; the id
    /// every frame of the round carried).
    pub round: u64,
    /// The protocol outcome (same type the in-memory driver returns).
    pub outcome: RoundOutcome,
    /// Per-stage traffic, measured as actual framed bytes on the wire
    /// (envelope headers included — unlike the driver's `wire_bytes()`
    /// accounting, which counts message bodies only).
    pub stats: RoundStats,
    /// Every detected departure, in detection order.
    pub dropouts: Vec<DetectedDropout>,
    /// Realized chunk count of the round's data plane.
    pub chunks: usize,
    /// Frames from *older* rounds discarded by the typed
    /// [`NetError::StaleRound`] check instead of being parsed into this
    /// round's state.
    pub stale_frames: u64,
    /// Event-loop wake-up accounting ([`CollectMode::Reactor`] only),
    /// as a **per-round delta**: only the polls/events/timer fires this
    /// round produced (join phase included when the round ran inside a
    /// [`Session`]). The scale tests assert `polls` stays `O(events)`,
    /// not `O(clients × ticks)`.
    pub reactor: Option<ReactorStats>,
    /// The same counters cumulative since the session's reactor was
    /// built — the pre-existing semantics, kept for whole-session
    /// accounting.
    pub reactor_session: Option<ReactorStats>,
    /// Per-round delta of every registered metrics series (keyed by
    /// canonical series id), when the round ran with enabled telemetry
    /// inside a [`Session`]. One schema for the session driver, the
    /// benches, and the tests.
    ///
    /// [`Session`]: crate::session::Session
    pub metrics: Option<MetricsSnapshot>,
}

/// Per-stage uplink accumulator.
#[derive(Default)]
pub(crate) struct Traffic {
    total: u64,
    max: u64,
}

impl Traffic {
    fn add(&mut self, bytes: u64) {
        self.total += bytes;
        self.max = self.max.max(bytes);
    }
}

/// Live connections, keyed by authenticated-at-join client id.
pub(crate) type Peers = BTreeMap<ClientId, Box<dyn EventedChannel>>;

/// Background work a collection loop interleaves between polls (chunk
/// unmasking during noise-share collection). Returns whether it did
/// work (so the reactor knows to poll non-blockingly and come back).
/// Errors abort the round.
type IdleWork<'a> = dyn FnMut(&mut Server) -> Result<bool, SecAggError> + 'a;

/// Reactor token namespace: client tokens are the id itself; tokens at
/// or above `JOIN_BASE` are provisional (unauthenticated) connections;
/// the topmost values are reserved for the stage timer and the waker.
pub(crate) const JOIN_BASE: u64 = 1 << 40;

/// Timer token for the active stage/chunk deadline.
pub(crate) const STAGE_TOKEN: Token = Token(u64::MAX - 2);

pub(crate) fn client_token(id: ClientId) -> Token {
    Token(u64::from(id))
}

pub(crate) fn client_of(token: Token) -> Option<ClientId> {
    (token.0 < JOIN_BASE).then_some(token.0 as ClientId)
}

/// Runs one full round over `acceptor` — the single-round convenience
/// wrapper around a one-round [`Session`] with legacy (roster,
/// eager-join) seating.
///
/// Accepts joins until every sampled client is present or
/// `join_timeout` passes, then drives the stages. Clients that vanish
/// mid-round are detected per stage (per chunk, on the data plane) and
/// the protocol continues as long as the threshold holds.
///
/// # Errors
///
/// [`NetError::SecAgg`] when the protocol aborts (e.g. below
/// threshold); transport errors only for coordinator-side failures
/// (individual client failures are dropouts, not errors).
pub fn run_coordinator(
    acceptor: &mut dyn Acceptor,
    cfg: &CoordinatorConfig,
) -> Result<NetRoundReport, NetError> {
    let params = cfg.params.clone();
    let session_cfg = SessionConfig {
        first_round: params.round,
        rounds: 1,
        join_timeout: cfg.join_timeout,
        stage_timeout: cfg.stage_timeout,
        chunks: cfg.chunks,
        chunk_compute: cfg.chunk_compute,
        tick: cfg.tick,
        mode: cfg.mode,
        workers: cfg.workers,
        shards: 1,
        ingress_budget: cfg.ingress_budget,
        telemetry: cfg.telemetry.clone(),
        metrics_addr: None,
        announce: false,
        population: Vec::new(),
        seating: Seating::Roster,
        params_for: Box::new(move |_, _| params.clone()),
        replica: None,
        faults: cfg.faults.clone(),
    };
    let mut session = Session::new(acceptor, session_cfg)?;
    session.run_round(&[])
}

// ---------------------------------------------------------------------
// The per-round state machine.
// ---------------------------------------------------------------------

/// All state belonging to one protocol round: the secagg server, the
/// chunk plan, the round id every envelope is checked against, and the
/// traffic / dropout / stale-frame accounting. Constructed fresh per
/// round by the [`Session`], so nothing can leak between rounds.
pub struct RoundMachine {
    round: u64,
    plan: ChunkPlan,
    requested_chunks: u16,
    server: Server,
    stats: RoundStats,
    dropouts: Vec<DetectedDropout>,
    stale_frames: u64,
}

impl RoundMachine {
    /// Builds the machine for `cfg`'s round: validates the parameters,
    /// derives the chunk plan, and resets the secagg server state.
    ///
    /// # Errors
    ///
    /// Invalid round parameters or an unrealizable chunk plan.
    pub fn new(cfg: &CoordinatorConfig) -> Result<RoundMachine, NetError> {
        cfg.params.validate().map_err(NetError::SecAgg)?;
        let requested_chunks = cfg.chunks.clamp(1, usize::from(u16::MAX)) as u16;
        let plan = ChunkPlan::aligned(
            cfg.params.vector_len,
            usize::from(requested_chunks),
            cfg.params.bit_width,
        )
        .map_err(|e| NetError::Protocol(format!("chunk plan: {e}")))?;
        let server =
            Server::with_chunks(cfg.params.clone(), plan.clone()).map_err(NetError::SecAgg)?;
        Ok(RoundMachine {
            round: cfg.params.round,
            plan,
            requested_chunks,
            server,
            stats: RoundStats::default(),
            dropouts: Vec::new(),
            stale_frames: 0,
        })
    }

    /// The round id this machine executes; every envelope is checked
    /// against it.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Drives the whole round over the already-seated `peers`:
    /// Setup broadcast (carrying `payload`), the five protocol stages
    /// with per-stage (per-chunk on the data plane) dropout detection,
    /// and the Finished broadcast. On return `peers` holds exactly the
    /// connections that survived the round; the session parks them for
    /// the next one.
    ///
    /// With a `compute` plane, the unmasking stage's CPU work — mask
    /// expansion and per-chunk aggregation — runs as pooled per-chunk
    /// jobs whose completions are installed between polls, so the
    /// coordinator thread keeps serving frames while workers burn CPU;
    /// without one it runs inline (the serial reference, bit-equal).
    ///
    /// # Errors
    ///
    /// [`NetError::SecAgg`] when the protocol aborts (below threshold,
    /// tampering); engine failures. Individual client failures are
    /// dropouts, not errors.
    pub fn run(
        mut self,
        mut engine: Option<&mut Reactor>,
        compute: Option<&mut ComputePlane>,
        peers: &mut Peers,
        cfg: &CoordinatorConfig,
        payload: &[u8],
    ) -> Result<NetRoundReport, NetError> {
        let round = self.round;
        // Per-round reactor accounting: the report's `reactor` field is
        // the delta over this machine's run (the session widens the
        // base to include its join phase).
        let reactor_base = engine.as_deref().map(|r| r.stats);
        let round_span = cfg.telemetry.span("round", "round", round, None);
        for &id in &cfg.params.clients {
            if !peers.contains_key(&id) {
                self.dropouts.push(DetectedDropout {
                    client: id,
                    stage: "Join",
                    chunk: None,
                    kind: DropKind::NeverJoined,
                });
            }
        }
        let mut no_idle = |_: &mut Server| Ok(false);

        // ---- Setup broadcast (params + chunk count + payload). ----
        let stage_span = cfg.telemetry.span("stage", "Setup", round, None);
        let setup = Envelope::new(
            StageTag::Setup,
            round,
            codec::encode_setup(&cfg.params, self.requested_chunks, cfg.cohort, payload),
        );
        broadcast(peers, &setup, &mut self.dropouts, "Setup", &cfg.telemetry);
        flush_sends(
            engine.as_deref_mut(),
            peers,
            &mut self.dropouts,
            "Setup",
            cfg,
        );
        // Fault hook: the primary dies right after the Setup broadcast
        // reached every seated client — they hold round state the
        // coordinator loses. Propagated directly (never through the
        // abort path): an injected kill must look like crash silence.
        cfg.faults.trip(KillPoint::DuringBroadcast, round)?;
        drop(stage_span);

        let joined: Vec<ClientId> = peers.keys().copied().collect();

        // ---- Stage 0: AdvertiseKeys. ----
        let stage_span = cfg.telemetry.span("stage", "AdvertiseKeys", round, None);
        let mut up = Traffic::default();
        let bodies = self
            .collect_stage(
                engine.as_deref_mut(),
                peers,
                &joined,
                StageTag::AdvertiseKeys,
                cfg,
                "AdvertiseKeys",
                &mut up,
                &mut no_idle,
            )
            .map_err(|e| abort_round(peers, round, e))?;
        let mut advs = Vec::with_capacity(bodies.len());
        for (id, body) in &bodies {
            match decode_advertised_keys(body) {
                Ok(a) if a.client == *id => advs.push(a),
                _ => drop_peer(
                    peers,
                    *id,
                    "AdvertiseKeys",
                    None,
                    DropKind::ProtocolViolation,
                    &mut self.dropouts,
                ),
            }
        }
        let roster = self.server.collect_advertisements(advs).map_err(|e| {
            abort_all(peers, round, &e);
            NetError::SecAgg(e)
        })?;
        let roster_env = Envelope::new(StageTag::Roster, round, encode_list(&roster));
        let down = broadcast(
            peers,
            &roster_env,
            &mut self.dropouts,
            "AdvertiseKeys",
            &cfg.telemetry,
        );
        flush_sends(
            engine.as_deref_mut(),
            peers,
            &mut self.dropouts,
            "AdvertiseKeys",
            cfg,
        );
        push_stage(&mut self.stats, &cfg.telemetry, "AdvertiseKeys", &up, down);
        drop(stage_span);

        // ---- Stage 1: ShareKeys. ----
        let stage_span = cfg.telemetry.span("stage", "ShareKeys", round, None);
        let expected: Vec<ClientId> = roster
            .iter()
            .map(|a| a.client)
            .filter(|id| peers.contains_key(id))
            .collect();
        let mut up = Traffic::default();
        let bodies = self
            .collect_stage(
                engine.as_deref_mut(),
                peers,
                &expected,
                StageTag::ShareKeys,
                cfg,
                "ShareKeys",
                &mut up,
                &mut no_idle,
            )
            .map_err(|e| abort_round(peers, round, e))?;
        let mut all_cts = Vec::new();
        for (id, body) in &bodies {
            match decode_list(body, decode_encrypted_shares) {
                Ok(cts) if cts.iter().all(|ct| ct.from == *id) => all_cts.extend(cts),
                _ => drop_peer(
                    peers,
                    *id,
                    "ShareKeys",
                    None,
                    DropKind::ProtocolViolation,
                    &mut self.dropouts,
                ),
            }
        }
        let mut inboxes = self.server.route_shares(all_cts).map_err(|e| {
            abort_all(peers, round, &e);
            NetError::SecAgg(e)
        })?;
        let mut down = Traffic::default();
        let inbox_ids: Vec<ClientId> = peers.keys().copied().collect();
        for id in inbox_ids {
            let cts = inboxes.remove(&id).unwrap_or_default();
            let env = Envelope::new(StageTag::Inbox, round, encode_list(&cts));
            down.add(env.encode().len() as u64);
            send_or_drop(peers, id, &env, "ShareKeys", &mut self.dropouts);
        }
        flush_sends(
            engine.as_deref_mut(),
            peers,
            &mut self.dropouts,
            "ShareKeys",
            cfg,
        );
        push_stage(&mut self.stats, &cfg.telemetry, "ShareKeys", &up, down);
        drop(stage_span);

        // ---- Stage 2: MaskedInputCollection, per (stage, chunk). ----
        let stage_span = cfg
            .telemetry
            .span("stage", "MaskedInputCollection", round, None);
        let u2: BTreeSet<ClientId> = self.server.u2().iter().copied().collect();
        let expected: Vec<ClientId> = peers.keys().copied().filter(|id| u2.contains(id)).collect();
        // Fault hook: the primary dies while the data plane is
        // mid-flight — the hardest crash, nothing of this round exists
        // outside the dying process.
        cfg.faults.trip(KillPoint::MidMaskedStage, round)?;
        let up = match engine.as_deref_mut() {
            Some(reactor) => self.collect_masked_chunks_reactor(reactor, peers, &expected, cfg),
            None => self.collect_masked_chunks_sweep(peers, &expected, cfg),
        }
        .map_err(|e| abort_round(peers, round, e))?;
        let u3 = self.server.finalize_masked().map_err(|e| {
            abort_all(peers, round, &e);
            NetError::SecAgg(e)
        })?;
        let u3_env = Envelope::new(
            StageTag::SurvivorSet,
            round,
            dordis_secagg::messages::IdList(u3.clone()).encoded(),
        );
        let down = broadcast(
            peers,
            &u3_env,
            &mut self.dropouts,
            "MaskedInputCollection",
            &cfg.telemetry,
        );
        flush_sends(
            engine.as_deref_mut(),
            peers,
            &mut self.dropouts,
            "MaskedInputCollection",
            cfg,
        );
        push_stage(
            &mut self.stats,
            &cfg.telemetry,
            "MaskedInputCollection",
            &up,
            down,
        );
        drop(stage_span);

        // ---- Stage 3: ConsistencyCheck (malicious only). ----
        if cfg.params.threat_model == ThreatModel::Malicious {
            let _stage_span = cfg.telemetry.span("stage", "ConsistencyCheck", round, None);
            let expected: Vec<ClientId> = u3
                .iter()
                .copied()
                .filter(|v| peers.contains_key(v))
                .collect();
            let mut up = Traffic::default();
            let bodies = self
                .collect_stage(
                    engine.as_deref_mut(),
                    peers,
                    &expected,
                    StageTag::ConsistencySig,
                    cfg,
                    "ConsistencyCheck",
                    &mut up,
                    &mut no_idle,
                )
                .map_err(|e| abort_round(peers, round, e))?;
            let mut sigs = Vec::new();
            for (id, body) in &bodies {
                match decode_consistency_signature(body) {
                    Ok(s) if s.client == *id => sigs.push(s),
                    _ => drop_peer(
                        peers,
                        *id,
                        "ConsistencyCheck",
                        None,
                        DropKind::ProtocolViolation,
                        &mut self.dropouts,
                    ),
                }
            }
            let list = self.server.collect_consistency(sigs).map_err(|e| {
                abort_all(peers, round, &e);
                NetError::SecAgg(e)
            })?;
            let env = Envelope::new(
                StageTag::SignatureList,
                round,
                codec::encode_signature_list(&list),
            );
            let down = broadcast(
                peers,
                &env,
                &mut self.dropouts,
                "ConsistencyCheck",
                &cfg.telemetry,
            );
            flush_sends(
                engine.as_deref_mut(),
                peers,
                &mut self.dropouts,
                "ConsistencyCheck",
                cfg,
            );
            push_stage(
                &mut self.stats,
                &cfg.telemetry,
                "ConsistencyCheck",
                &up,
                down,
            );
        }

        // ---- Stage 4: Unmasking (share collection is round-global). ----
        let stage_span = cfg.telemetry.span("stage", "Unmasking", round, None);
        let expected: Vec<ClientId> = u3
            .iter()
            .copied()
            .filter(|v| peers.contains_key(v))
            .collect();
        let mut up = Traffic::default();
        let bodies = self
            .collect_stage(
                engine.as_deref_mut(),
                peers,
                &expected,
                StageTag::Unmasking,
                cfg,
                "Unmasking",
                &mut up,
                &mut no_idle,
            )
            .map_err(|e| abort_round(peers, round, e))?;
        let mut responses = Vec::new();
        for (id, body) in &bodies {
            match decode_unmasking_response(body) {
                Ok(r) if r.client == *id => responses.push(r),
                _ => drop_peer(
                    peers,
                    *id,
                    "Unmasking",
                    None,
                    DropKind::ProtocolViolation,
                    &mut self.dropouts,
                ),
            }
        }
        // ---- Unmask execution plan: serial (inline full-length
        // correction, the reference) or pooled (reconstruction and
        // privacy bookkeeping stay here; the `O(dropped × neighbors ×
        // d)` mask expansion fans out as one job per chunk, each
        // seeking every mask stream to its chunk's element offset). ----
        let total_chunks = self.plan.chunks();
        let chunk_compute = cfg.chunk_compute;
        let plan = self.plan.clone();
        let telem = cfg.telemetry.clone();
        let job_hist = cfg
            .telemetry
            .histogram("dordis_unmask_job_duration_ns", &[]);
        let mut compute = compute;
        if let Some(plane) = compute.as_deref_mut() {
            // A previous round that aborted mid-unmask may have left
            // its chunk sums queued (or still running) in the
            // session-warm pool; their chunk indices would alias this
            // round's. Flush them before submitting.
            plane.discard_stale();
            let jobs = self.server.plan_unmasking(responses).map_err(|e| {
                abort_all(peers, round, &e);
                NetError::SecAgg(e)
            })?;
            let jobs = Arc::new(jobs);
            for c in 0..total_chunks {
                let inputs = self.server.take_chunk_inputs(c).map_err(|e| {
                    abort_all(peers, round, &e);
                    NetError::SecAgg(e)
                })?;
                let jobs = Arc::clone(&jobs);
                let range = self.plan.range(c);
                let bits = self.plan.bit_width();
                let plan = plan.clone();
                let telem = telem.clone();
                let job_hist = job_hist.clone();
                plane.submit(c, move || {
                    // The span/histogram record from the worker thread,
                    // so the trace shows the job on its worker's track.
                    let span = telem.span("compute", "unmask_job", round, Some(c as u16));
                    let t0 = telem.now_ns();
                    let sum = unmask_chunk_task(&inputs, &jobs, range.start, range.len(), bits);
                    chunk_sleep(chunk_compute, &plan, c);
                    job_hist.observe(telem.now_ns().saturating_sub(t0));
                    drop(span);
                    sum
                });
            }
        } else {
            self.server.reconstruct_unmasking(responses).map_err(|e| {
                abort_all(peers, round, &e);
                NetError::SecAgg(e)
            })?;
        }
        let u5 = self.server.u5().to_vec();

        // Per-chunk unmask progress advances between noise-share polls:
        // serial mode unmasks the next chunk inline (chunk c + 1 can be
        // collected while chunk c's compute runs); pooled mode installs
        // whatever the workers have finished (their completions also
        // wake the reactor via COMPUTE_TOKEN, so the thread sleeps in
        // the poller, never polling the pool).
        let mut next_unmask = 0usize; // serial cursor
        let mut installed = 0usize; // pooled install count
        let mut unmask_step = |server: &mut Server| -> Result<bool, SecAggError> {
            match compute.as_deref_mut() {
                Some(plane) => {
                    let mut did = false;
                    while let Some((c, outcome)) = plane.try_complete() {
                        install_chunk(server, c, outcome)?;
                        installed += 1;
                        did = true;
                    }
                    Ok(did)
                }
                None => {
                    if next_unmask < total_chunks {
                        let span =
                            telem.span("compute", "unmask_chunk", round, Some(next_unmask as u16));
                        let t0 = telem.now_ns();
                        server.unmask_chunk(next_unmask)?;
                        chunk_sleep(chunk_compute, &plan, next_unmask);
                        job_hist.observe(telem.now_ns().saturating_sub(t0));
                        drop(span);
                        next_unmask += 1;
                        Ok(true)
                    } else {
                        Ok(false)
                    }
                }
            }
        };

        // ---- Stage 5: ExcessiveNoiseRemoval (only if needed). ----
        if self.server.pending_seed_owners().is_empty() {
            let down_u5 = Traffic::default();
            push_stage(&mut self.stats, &cfg.telemetry, "Unmasking", &up, down_u5);
            drop(stage_span);
        } else {
            let u5_env = Envelope::new(
                StageTag::ReadySet,
                round,
                dordis_secagg::messages::IdList(u5.clone()).encoded(),
            );
            let down = broadcast(
                peers,
                &u5_env,
                &mut self.dropouts,
                "Unmasking",
                &cfg.telemetry,
            );
            flush_sends(
                engine.as_deref_mut(),
                peers,
                &mut self.dropouts,
                "Unmasking",
                cfg,
            );
            push_stage(&mut self.stats, &cfg.telemetry, "Unmasking", &up, down);
            drop(stage_span);
            let _stage_span = cfg
                .telemetry
                .span("stage", "ExcessiveNoiseRemoval", round, None);

            let expected: Vec<ClientId> = u5
                .iter()
                .copied()
                .filter(|v| peers.contains_key(v))
                .collect();
            let mut up = Traffic::default();
            let bodies = self
                .collect_stage(
                    engine.as_deref_mut(),
                    peers,
                    &expected,
                    StageTag::NoiseShares,
                    cfg,
                    "ExcessiveNoiseRemoval",
                    &mut up,
                    &mut unmask_step,
                )
                .map_err(|e| abort_round(peers, round, e))?;
            let mut responses = Vec::new();
            for (id, body) in &bodies {
                match decode_noise_share_response(body) {
                    Ok(r) if r.client == *id => responses.push(r),
                    _ => drop_peer(
                        peers,
                        *id,
                        "ExcessiveNoiseRemoval",
                        None,
                        DropKind::ProtocolViolation,
                        &mut self.dropouts,
                    ),
                }
            }
            self.server.collect_noise_shares(responses).map_err(|e| {
                abort_all(peers, round, &e);
                NetError::SecAgg(e)
            })?;
            push_stage(
                &mut self.stats,
                &cfg.telemetry,
                "ExcessiveNoiseRemoval",
                &up,
                Traffic::default(),
            );
        }

        // Unmask whatever chunks the idle interleaving did not reach
        // (serial: run them inline; pooled: drain anything already
        // queued without blocking).
        for _ in 0..total_chunks {
            unmask_step(&mut self.server).map_err(|e| {
                abort_all(peers, round, &e);
                NetError::SecAgg(e)
            })?;
        }
        // Pooled barrier: await the chunks still on the workers. The
        // block is pure wait — the expansions keep running on other
        // cores — and only the tail of the round ever reaches it.
        // (`unmask_step`'s borrow of `compute` and `installed` ends
        // with its last call above.)
        if let Some(plane) = compute {
            while installed < total_chunks {
                let Some((c, outcome)) = plane.wait_complete() else {
                    return Err(NetError::Protocol(format!(
                        "compute plane lost {} unmask job(s)",
                        total_chunks - installed
                    )));
                };
                install_chunk(&mut self.server, c, outcome).map_err(|e| {
                    abort_all(peers, round, &e);
                    NetError::SecAgg(e)
                })?;
                installed += 1;
            }
            plane.sync_metrics(&cfg.telemetry);
        }

        // ---- Finished broadcast. ----
        let fin = Envelope::new(
            StageTag::Finished,
            round,
            dordis_secagg::messages::IdList(u3.clone()).encoded(),
        );
        broadcast(peers, &fin, &mut self.dropouts, "Finished", &cfg.telemetry);
        flush_sends(
            engine.as_deref_mut(),
            peers,
            &mut self.dropouts,
            "Finished",
            cfg,
        );

        debug_assert!(self.server.privacy_invariant_holds());
        for d in &self.dropouts {
            if d.kind == DropKind::Aborted {
                self.stats.aborted.push(d.client);
            }
        }
        if cfg.telemetry.is_enabled() {
            for d in &self.dropouts {
                let kind = match d.kind {
                    DropKind::NeverJoined => "never_joined",
                    DropKind::Disconnected => "disconnected",
                    DropKind::DeadlineMissed => "deadline_missed",
                    DropKind::Aborted => "aborted",
                    DropKind::ProtocolViolation => "protocol_violation",
                };
                cfg.telemetry
                    .counter(
                        "dordis_dropouts_total",
                        &[("kind", kind), ("stage", d.stage)],
                    )
                    .inc();
            }
            cfg.telemetry
                .counter("dordis_stale_frames_total", &[])
                .add(self.stale_frames);
        }
        drop(round_span);
        let reactor_now = engine.map(|r| r.stats);
        Ok(NetRoundReport {
            round,
            outcome: self.server.finish(),
            stats: self.stats,
            dropouts: self.dropouts,
            chunks: total_chunks,
            stale_frames: self.stale_frames,
            reactor: match (reactor_now, reactor_base) {
                (Some(now), Some(base)) => Some(now.delta_since(base)),
                (now, _) => now,
            },
            reactor_session: reactor_now,
            metrics: None,
        })
    }

    // -----------------------------------------------------------------
    // Masked-input collection (per stage, chunk).
    // -----------------------------------------------------------------

    /// Files one already-received chunk frame: the bit-packed payload
    /// is decoded in place past the envelope header and fed straight
    /// into the server's per-chunk state, where a completed stream
    /// folds into the running chunk sums — the frame allocation goes
    /// back to the pool immediately instead of parking until a chunk
    /// barrier. Returns whether the client's stream is still alive,
    /// plus the frame for the caller to recycle.
    ///
    /// # Errors
    ///
    /// Propagates server-side collection failures (protocol aborts).
    fn file_chunk_frame(
        &mut self,
        st: &mut ChunkCollect,
        peers: &mut Peers,
        id: ClientId,
        frame: Vec<u8>,
    ) -> Result<(bool, Vec<u8>), NetError> {
        let m = self.plan.chunks();
        *st.per_client.entry(id).or_default() += frame.len() as u64;
        let (stage, frame_round, chunk) = match EnvelopeView::decode(&frame) {
            Ok(env) => (env.stage, env.round, env.chunk),
            Err(_) => {
                let alive = self.drop_from_chunks(st, peers, id, DropKind::ProtocolViolation);
                return Ok((alive, frame));
            }
        };
        if stage == StageTag::Abort {
            let alive = self.drop_from_chunks(st, peers, id, DropKind::Aborted);
            return Ok((alive, frame));
        }
        // Same round gate as `Envelope::check_round` (aborts already
        // handled above, so a round mismatch here is never abort-exempt).
        if frame_round != self.round {
            if frame_round < self.round {
                // A leftover frame from an earlier round: discard it
                // rather than misparse it into this round's state. The
                // client's current-round stream continues.
                self.stale_frames += 1;
                return Ok((true, frame));
            }
            let alive = self.drop_from_chunks(st, peers, id, DropKind::ProtocolViolation);
            return Ok((alive, frame));
        }
        if stage == StageTag::MaskedInput && usize::from(chunk) < m {
            let c = usize::from(chunk);
            let ctx = FrameContext {
                stage: StageTag::MaskedInput,
                round: self.round,
                chunk,
            };
            match decode_masked_input(
                &frame[HEADER_BYTES..],
                self.plan.bit_width(),
                self.plan.chunk_len(c),
                ctx,
            ) {
                Ok(mi) if mi.client == id => {
                    self.server
                        .collect_masked_chunk(c, vec![mi])
                        .map_err(NetError::SecAgg)?;
                    if st.pendings[c].remove(&id) {
                        if let Some(left) = st.remaining.get_mut(&id) {
                            *left = left.saturating_sub(1);
                        }
                    }
                    Ok((true, frame))
                }
                _ => {
                    let alive = self.drop_from_chunks(st, peers, id, DropKind::ProtocolViolation);
                    Ok((alive, frame))
                }
            }
        } else {
            let alive = self.drop_from_chunks(st, peers, id, DropKind::ProtocolViolation);
            Ok((alive, frame))
        }
    }

    /// Drops `id` from every remaining chunk, attributing the departure
    /// to the active chunk. Always returns `false` (stream dead).
    fn drop_from_chunks(
        &mut self,
        st: &mut ChunkCollect,
        peers: &mut Peers,
        id: ClientId,
        kind: DropKind,
    ) -> bool {
        let chunk = st.active as u16;
        st.remove_everywhere(id);
        drop_peer(
            peers,
            id,
            "MaskedInputCollection",
            Some(chunk),
            kind,
            &mut self.dropouts,
        );
        false
    }

    /// Closes the active chunk (its pending set must be empty) and
    /// advances to the next one. The chunk's frames were decoded and
    /// fed to the server at arrival, so only the pipeline bookkeeping
    /// remains: the chunk span and the injected per-chunk compute cost.
    fn aggregate_active(&mut self, st: &mut ChunkCollect, cfg: &CoordinatorConfig) {
        let _span = cfg
            .telemetry
            .span("chunk", "chunk", self.round, Some(st.active as u16));
        chunk_sleep(cfg.chunk_compute, &self.plan, st.active);
        st.active += 1;
    }

    /// The per-(stage, chunk) masked-input collector — blocking-sweep
    /// engine. Chunk `c + 1`'s frames accumulate (from fast clients and
    /// channel buffers) while chunk `c` is decoded, validated, and
    /// aggregated into the server's per-chunk state; the stage deadline
    /// restarts per chunk. A client whose stream stops — disconnect,
    /// garbage, or silence past the active chunk's deadline — is dropped
    /// from every remaining chunk; its partial deliveries never reach a
    /// sum because U3 requires all chunks.
    fn collect_masked_chunks_sweep(
        &mut self,
        peers: &mut Peers,
        expected: &[ClientId],
        cfg: &CoordinatorConfig,
    ) -> Result<Traffic, NetError> {
        let m = self.plan.chunks();
        let stage_name = "MaskedInputCollection";
        let mut st = ChunkCollect::new(expected, peers, m);
        let mut deadline = Instant::now() + cfg.stage_timeout;

        while st.active < m {
            st.pendings[st.active].retain(|id| peers.contains_key(id));
            if st.pendings[st.active].is_empty() {
                // Chunk complete: aggregate it while later chunks keep
                // arriving into the transport buffers.
                self.aggregate_active(&mut st, cfg);
                deadline = Instant::now() + cfg.stage_timeout;
                continue;
            }
            if Instant::now() >= deadline {
                let late: Vec<ClientId> = st.pendings[st.active].iter().copied().collect();
                for id in late {
                    let chunk = st.active as u16;
                    st.remove_everywhere(id);
                    drop_peer(
                        peers,
                        id,
                        stage_name,
                        Some(chunk),
                        DropKind::DeadlineMissed,
                        &mut self.dropouts,
                    );
                }
                continue;
            }
            let ids: Vec<ClientId> = st.pendings[st.active].iter().copied().collect();
            for id in ids {
                let Some(chan) = peers.get_mut(&id) else {
                    st.remove_everywhere(id);
                    continue;
                };
                let slice = (Instant::now() + cfg.tick).min(deadline);
                match chan.recv_deadline(slice) {
                    Ok(frame) => {
                        let (_, frame) = self.file_chunk_frame(&mut st, peers, id, frame)?;
                        // Decoded (or rejected) at arrival either way:
                        // the allocation goes straight back to the pool.
                        if let Some(chan) = peers.get_mut(&id) {
                            chan.recycle_frame(frame);
                        }
                    }
                    Err(NetError::Timeout) => {}
                    Err(_) => {
                        let chunk = st.died_at(id);
                        st.remove_everywhere(id);
                        drop_peer(
                            peers,
                            id,
                            stage_name,
                            Some(chunk),
                            DropKind::Disconnected,
                            &mut self.dropouts,
                        );
                    }
                }
            }
        }
        Ok(st.uplink())
    }

    /// The per-(stage, chunk) masked-input collector — reactor engine.
    /// Same state machine, but frames, disconnects, and per-chunk
    /// deadlines arrive as events: the thread sleeps in the poller while
    /// clients stream, instead of sweeping every pending channel per
    /// tick.
    fn collect_masked_chunks_reactor(
        &mut self,
        reactor: &mut Reactor,
        peers: &mut Peers,
        expected: &[ClientId],
        cfg: &CoordinatorConfig,
    ) -> Result<Traffic, NetError> {
        let m = self.plan.chunks();
        let stage_name = "MaskedInputCollection";
        let mut st = ChunkCollect::new(expected, peers, m);
        reactor.arm_deadline(STAGE_TOKEN, Instant::now() + cfg.stage_timeout);

        // Initial sweep: frames may already be buffered (sent between
        // the Inbox flush and this loop), and their readiness may have
        // been consumed by an earlier poll.
        let ids: Vec<ClientId> = st.pendings[0].iter().copied().collect();
        for id in ids {
            self.drain_chunk_frames(&mut st, peers, id)?;
        }

        // Budget-driven admission: with an ingress budget set, only a
        // window of clients streams its masked input at a time — a
        // stream's decoded chunks are retained until it completes and
        // folds into the running sums, so concurrent streams (not wire
        // buffering, which the byte accounts already bound) are what
        // set the coordinator's peak memory during the burst.
        let mut admission =
            Admission::start(cfg.ingress_budget, self.plan.vector_len(), &st, peers);

        let (mut events, mut expired) = (Vec::new(), Vec::new());
        loop {
            // Aggregate every chunk whose pending set has emptied; the
            // deadline clock restarts per completed chunk.
            let mut aggregated = false;
            while st.active < m {
                st.pendings[st.active].retain(|id| peers.contains_key(id));
                if !st.pendings[st.active].is_empty() {
                    break;
                }
                self.aggregate_active(&mut st, cfg);
                aggregated = true;
            }
            if st.active == m {
                break;
            }
            if aggregated {
                reactor.arm_deadline(STAGE_TOKEN, Instant::now() + cfg.stage_timeout);
            }
            reactor.poll(&mut events, &mut expired, cfg.stage_timeout)?;
            let mut admitted_more = false;
            for ev in &events {
                handle_write_event(peers, ev, stage_name, &mut self.dropouts);
                let Some(id) = client_of(ev.token) else {
                    continue;
                };
                if (ev.readable || ev.closed) && peers.contains_key(&id) {
                    self.drain_chunk_frames(&mut st, peers, id)?;
                }
                if let Some(adm) = &mut admission {
                    if st.completed(id) || !peers.contains_key(&id) {
                        admitted_more |= adm.settle(id, &st, peers);
                    }
                }
            }
            if admitted_more {
                // The admission window advanced: the stage is making
                // progress, so the deadline restarts like a completed
                // chunk would restart it.
                reactor.arm_deadline(STAGE_TOKEN, Instant::now() + cfg.stage_timeout);
            }
            if expired.contains(&STAGE_TOKEN) {
                // Under admission only the *admitted* laggards are at
                // fault — clients still held by the window were never
                // allowed to stream.
                let late: Vec<ClientId> = st.pendings[st.active]
                    .iter()
                    .copied()
                    .filter(|&id| admission.as_ref().is_none_or(|a| a.is_admitted(id)))
                    .collect();
                for id in late {
                    let chunk = st.active as u16;
                    st.remove_everywhere(id);
                    drop_peer(
                        peers,
                        id,
                        stage_name,
                        Some(chunk),
                        DropKind::DeadlineMissed,
                        &mut self.dropouts,
                    );
                    if let Some(adm) = &mut admission {
                        adm.settle(id, &st, peers);
                    }
                }
                reactor.arm_deadline(STAGE_TOKEN, Instant::now() + cfg.stage_timeout);
            }
        }
        if let Some(adm) = admission {
            adm.finish(peers);
        }
        reactor.cancel_deadline(STAGE_TOKEN);
        Ok(st.uplink())
    }

    /// Drains every currently available frame from `id`'s channel into
    /// the chunk state, detecting stream death (disconnect / abort /
    /// garbage).
    ///
    /// # Errors
    ///
    /// Propagates server-side collection failures (protocol aborts).
    fn drain_chunk_frames(
        &mut self,
        st: &mut ChunkCollect,
        peers: &mut Peers,
        id: ClientId,
    ) -> Result<(), NetError> {
        loop {
            let Some(chan) = peers.get_mut(&id) else {
                return Ok(());
            };
            match chan.try_recv() {
                Ok(Some(frame)) => {
                    let (alive, frame) = self.file_chunk_frame(st, peers, id, frame)?;
                    // The decode copied the payload into the server's
                    // chunk state (or the frame was rejected); the
                    // allocation goes straight back to the pool.
                    if let Some(chan) = peers.get_mut(&id) {
                        chan.recycle_frame(frame);
                    }
                    if !alive {
                        return Ok(());
                    }
                }
                Ok(None) => return Ok(()),
                Err(_) => {
                    let chunk = st.died_at(id);
                    st.remove_everywhere(id);
                    drop_peer(
                        peers,
                        id,
                        "MaskedInputCollection",
                        Some(chunk),
                        DropKind::Disconnected,
                        &mut self.dropouts,
                    );
                    return Ok(());
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Round-global stage collection.
    // -----------------------------------------------------------------

    /// Collects exactly one body per expected client for `want`, until
    /// the per-stage deadline. Silent or disconnected clients become
    /// detected dropouts and are removed from `peers`. `idle` runs once
    /// per loop turn so pending per-chunk work (unmasking) overlaps the
    /// wait.
    ///
    /// # Errors
    ///
    /// Only `idle` failures (protocol aborts) — per-client failures are
    /// dropouts, not errors.
    #[allow(clippy::too_many_arguments)]
    fn collect_stage(
        &mut self,
        engine: Option<&mut Reactor>,
        peers: &mut Peers,
        expected: &[ClientId],
        want: StageTag,
        cfg: &CoordinatorConfig,
        stage_name: &'static str,
        up: &mut Traffic,
        idle: &mut IdleWork<'_>,
    ) -> Result<BTreeMap<ClientId, Vec<u8>>, NetError> {
        match engine {
            Some(reactor) => self
                .collect_stage_reactor(reactor, peers, expected, want, cfg, stage_name, up, idle),
            None => self.collect_stage_sweep(peers, expected, want, cfg, stage_name, up, idle),
        }
    }

    /// Files one round-global stage frame; returns `false` if the client
    /// was dropped.
    #[allow(clippy::too_many_arguments)]
    fn file_stage_frame(
        &mut self,
        peers: &mut Peers,
        pending: &mut BTreeSet<ClientId>,
        bodies: &mut BTreeMap<ClientId, Vec<u8>>,
        id: ClientId,
        frame: &[u8],
        want: StageTag,
        stage_name: &'static str,
        up: &mut Traffic,
    ) -> bool {
        up.add(frame.len() as u64);
        let env = match Envelope::decode(frame) {
            Ok(env) => env,
            Err(_) => {
                pending.remove(&id);
                drop_peer(
                    peers,
                    id,
                    stage_name,
                    None,
                    DropKind::ProtocolViolation,
                    &mut self.dropouts,
                );
                return false;
            }
        };
        if env.stage == StageTag::Abort {
            pending.remove(&id);
            drop_peer(
                peers,
                id,
                stage_name,
                None,
                DropKind::Aborted,
                &mut self.dropouts,
            );
            return false;
        }
        if let Err(NetError::StaleRound { got, expected }) = env.check_round(self.round) {
            if got < expected {
                // Typed stale-frame rejection: discard, never file.
                self.stale_frames += 1;
                return true;
            }
            pending.remove(&id);
            drop_peer(
                peers,
                id,
                stage_name,
                None,
                DropKind::ProtocolViolation,
                &mut self.dropouts,
            );
            return false;
        }
        if env.stage == want && pending.contains(&id) {
            bodies.insert(id, env.body);
            pending.remove(&id);
            true
        } else {
            // A frame for a client that already answered (and is not an
            // abort) is out-of-protocol.
            pending.remove(&id);
            drop_peer(
                peers,
                id,
                stage_name,
                None,
                DropKind::ProtocolViolation,
                &mut self.dropouts,
            );
            false
        }
    }

    /// Blocking-sweep engine for [`RoundMachine::collect_stage`].
    #[allow(clippy::too_many_arguments)]
    fn collect_stage_sweep(
        &mut self,
        peers: &mut Peers,
        expected: &[ClientId],
        want: StageTag,
        cfg: &CoordinatorConfig,
        stage_name: &'static str,
        up: &mut Traffic,
        idle: &mut IdleWork<'_>,
    ) -> Result<BTreeMap<ClientId, Vec<u8>>, NetError> {
        let mut deadline = Instant::now() + cfg.stage_timeout;
        let mut pending: BTreeSet<ClientId> = expected
            .iter()
            .copied()
            .filter(|id| peers.contains_key(id))
            .collect();
        let mut bodies: BTreeMap<ClientId, Vec<u8>> = BTreeMap::new();
        while !pending.is_empty() && Instant::now() < deadline {
            // Interleaved background work (per-chunk unmasking, possibly
            // with injected compute) must not eat the peers' response
            // window: credit its wall time back to the stage deadline.
            let idle_start = Instant::now();
            idle(&mut self.server).map_err(NetError::SecAgg)?;
            deadline += idle_start.elapsed();
            let ids: Vec<ClientId> = pending.iter().copied().collect();
            for id in ids {
                let Some(chan) = peers.get_mut(&id) else {
                    pending.remove(&id);
                    continue;
                };
                let slice = (Instant::now() + cfg.tick).min(deadline);
                match chan.recv_deadline(slice) {
                    Ok(frame) => {
                        self.file_stage_frame(
                            peers,
                            &mut pending,
                            &mut bodies,
                            id,
                            &frame,
                            want,
                            stage_name,
                            up,
                        );
                        // The body was copied out during decode; the
                        // frame allocation goes back to the pool.
                        if let Some(chan) = peers.get_mut(&id) {
                            chan.recycle_frame(frame);
                        }
                    }
                    Err(NetError::Timeout) => {}
                    Err(_) => {
                        pending.remove(&id);
                        drop_peer(
                            peers,
                            id,
                            stage_name,
                            None,
                            DropKind::Disconnected,
                            &mut self.dropouts,
                        );
                    }
                }
            }
        }
        for id in pending {
            drop_peer(
                peers,
                id,
                stage_name,
                None,
                DropKind::DeadlineMissed,
                &mut self.dropouts,
            );
        }
        Ok(bodies)
    }

    /// Reactor engine for [`RoundMachine::collect_stage`]: the thread
    /// sleeps in the poller until frames, disconnects, or the stage
    /// deadline are ready. Idle work runs between polls (non-blocking
    /// polls while it reports more work, so collection stays responsive
    /// during long interleaves).
    #[allow(clippy::too_many_arguments)]
    fn collect_stage_reactor(
        &mut self,
        reactor: &mut Reactor,
        peers: &mut Peers,
        expected: &[ClientId],
        want: StageTag,
        cfg: &CoordinatorConfig,
        stage_name: &'static str,
        up: &mut Traffic,
        idle: &mut IdleWork<'_>,
    ) -> Result<BTreeMap<ClientId, Vec<u8>>, NetError> {
        let mut deadline = Instant::now() + cfg.stage_timeout;
        let mut pending: BTreeSet<ClientId> = expected
            .iter()
            .copied()
            .filter(|id| peers.contains_key(id))
            .collect();
        let mut bodies: BTreeMap<ClientId, Vec<u8>> = BTreeMap::new();
        reactor.arm_deadline(STAGE_TOKEN, deadline);

        // Initial sweep: responses may already be buffered, and their
        // readiness may have been consumed by an earlier poll (e.g.
        // during a broadcast flush).
        let ids: Vec<ClientId> = pending.iter().copied().collect();
        for id in ids {
            self.drain_stage_frames(peers, &mut pending, &mut bodies, id, want, stage_name, up);
        }

        let (mut events, mut expired) = (Vec::new(), Vec::new());
        'collect: while !pending.is_empty() {
            // Interleaved background work must not eat the peers'
            // response window: credit its wall time back to the stage
            // deadline.
            let idle_start = Instant::now();
            let did_work = idle(&mut self.server).map_err(NetError::SecAgg)?;
            let spent = idle_start.elapsed();
            if !spent.is_zero() {
                deadline += spent;
                reactor.arm_deadline(STAGE_TOKEN, deadline);
            }
            // With idle work in flight, poll without blocking and come
            // straight back; otherwise sleep until an event or the
            // deadline.
            let wait = if did_work {
                Duration::ZERO
            } else {
                cfg.stage_timeout
            };
            reactor.poll(&mut events, &mut expired, wait)?;
            for ev in &events {
                handle_write_event(peers, ev, stage_name, &mut self.dropouts);
                let Some(id) = client_of(ev.token) else {
                    continue;
                };
                if !(ev.readable || ev.closed) || !peers.contains_key(&id) {
                    continue;
                }
                self.drain_stage_frames(peers, &mut pending, &mut bodies, id, want, stage_name, up);
            }
            // A write-event failure (or any other path) may have dropped
            // a peer without touching `pending` — retain, so the stage
            // can complete and the leftover loop below can't
            // double-record.
            pending.retain(|id| peers.contains_key(id));
            if expired.contains(&STAGE_TOKEN) {
                break 'collect;
            }
        }
        reactor.cancel_deadline(STAGE_TOKEN);
        for id in pending {
            if peers.contains_key(&id) {
                drop_peer(
                    peers,
                    id,
                    stage_name,
                    None,
                    DropKind::DeadlineMissed,
                    &mut self.dropouts,
                );
            }
        }
        Ok(bodies)
    }

    /// Drains every currently available frame from `id` during a
    /// round-global stage.
    #[allow(clippy::too_many_arguments)]
    fn drain_stage_frames(
        &mut self,
        peers: &mut Peers,
        pending: &mut BTreeSet<ClientId>,
        bodies: &mut BTreeMap<ClientId, Vec<u8>>,
        id: ClientId,
        want: StageTag,
        stage_name: &'static str,
        up: &mut Traffic,
    ) {
        loop {
            let Some(chan) = peers.get_mut(&id) else {
                return;
            };
            match chan.try_recv() {
                Ok(Some(frame)) => {
                    if !self
                        .file_stage_frame(peers, pending, bodies, id, &frame, want, stage_name, up)
                    {
                        return;
                    }
                    if let Some(chan) = peers.get_mut(&id) {
                        chan.recycle_frame(frame);
                    }
                }
                Ok(None) => return,
                Err(_) => {
                    if pending.remove(&id) {
                        drop_peer(
                            peers,
                            id,
                            stage_name,
                            None,
                            DropKind::Disconnected,
                            &mut self.dropouts,
                        );
                    } else {
                        // Already answered this stage; the disconnect
                        // will be observed when it next matters.
                    }
                    return;
                }
            }
        }
    }
}

/// Installs one pooled chunk completion into the server; a worker
/// panic is surfaced as a protocol abort (the chunk sum is
/// unrecoverable without re-running the job).
fn install_chunk(
    server: &mut Server,
    chunk: usize,
    outcome: JobOutcome<Vec<u64>>,
) -> Result<(), SecAggError> {
    match outcome {
        JobOutcome::Done(sum) => server.install_chunk_sum(chunk, sum),
        JobOutcome::Panicked(msg) => Err(SecAggError::Config(format!(
            "compute worker panicked unmasking chunk {chunk}: {msg}"
        ))),
    }
}

/// Maps a failed stage to a round abort (notifying live peers when the
/// failure is a protocol-level one).
fn abort_round(peers: &mut Peers, round: u64, e: NetError) -> NetError {
    if let NetError::SecAgg(err) = &e {
        abort_all(peers, round, err);
    }
    e
}

/// Sleeps the injected per-chunk s-comp cost: the whole-vector cost
/// scaled by the chunk's share of the elements.
fn chunk_sleep(chunk_compute: Option<Duration>, plan: &ChunkPlan, chunk: usize) {
    let Some(total) = chunk_compute else { return };
    let d = plan.vector_len().max(1);
    let frac = plan.chunk_len(chunk) as f64 / d as f64;
    let dur = total.mul_f64(frac);
    if !dur.is_zero() {
        std::thread::sleep(dur);
    }
}

/// Shared per-chunk collection state.
struct ChunkCollect {
    /// Clients still owing each chunk.
    pendings: Vec<BTreeSet<ClientId>>,
    /// Distinct chunks each live client still owes; `0` means the whole
    /// stream landed (feeds the budget admission window).
    remaining: BTreeMap<ClientId, usize>,
    /// Uplink bytes per client (the per-stage max is over whole chunk
    /// streams, not individual frames).
    per_client: BTreeMap<ClientId, u64>,
    /// Chunk currently being collected/aggregated.
    active: usize,
}

impl ChunkCollect {
    fn new(expected: &[ClientId], peers: &Peers, m: usize) -> ChunkCollect {
        let base: BTreeSet<ClientId> = expected
            .iter()
            .copied()
            .filter(|id| peers.contains_key(id))
            .collect();
        ChunkCollect {
            remaining: base.iter().map(|&id| (id, m)).collect(),
            pendings: vec![base; m],
            per_client: BTreeMap::new(),
            active: 0,
        }
    }

    /// Whether `id`'s whole chunk stream has been filed.
    fn completed(&self, id: ClientId) -> bool {
        self.remaining.get(&id) == Some(&0)
    }

    /// First chunk `id` still owes (where its stream died), for dropout
    /// attribution; falls back to the active chunk.
    fn died_at(&self, id: ClientId) -> u16 {
        self.pendings
            .iter()
            .position(|p| p.contains(&id))
            .unwrap_or(self.active) as u16
    }

    fn remove_everywhere(&mut self, id: ClientId) {
        for p in &mut self.pendings {
            p.remove(&id);
        }
    }

    fn uplink(&self) -> Traffic {
        let mut up = Traffic::default();
        for &bytes in self.per_client.values() {
            up.add(bytes);
        }
        up
    }
}

/// Budget-driven admission window over the masked-input burst.
///
/// Wire buffering is already bounded by the byte accounts, but a
/// client's *decoded* chunks are retained (8 B/element) until its whole
/// stream lands and folds into the running sums. With every client
/// streaming at once that retention peaks at `cohort x vector x 8`
/// bytes regardless of budget. The window caps how many streams are in
/// flight: held clients keep their ingress paused
/// ([`EventedChannel::set_ingress_hold`]) — their uploads sit in kernel
/// socket buffers, pushed back by TCP flow control — and each is
/// released as an admitted stream completes (or its client drops).
struct Admission {
    /// Clients not yet admitted; their ingress is held.
    queue: VecDeque<ClientId>,
    /// Admitted clients whose streams are still incomplete.
    admitted: BTreeSet<ClientId>,
}

impl Admission {
    /// Builds the window and holds everyone outside it. `None` (no
    /// admission) when there is no budget or the whole cohort fits.
    fn start(
        budget: u64,
        vector_len: usize,
        st: &ChunkCollect,
        peers: &mut Peers,
    ) -> Option<Admission> {
        if budget == 0 {
            return None;
        }
        // Decoded retention cost of one in-flight stream.
        let per_client = (vector_len as u64).saturating_mul(8).max(1);
        let window = usize::try_from((budget / per_client).max(1)).unwrap_or(usize::MAX);
        let roster: Vec<ClientId> = st.remaining.keys().copied().collect();
        if window >= roster.len() {
            return None;
        }
        let mut adm = Admission {
            queue: roster.into_iter().collect(),
            admitted: BTreeSet::new(),
        };
        for _ in 0..window {
            adm.admit_next(st, peers);
        }
        for &id in &adm.queue {
            if let Some(chan) = peers.get_mut(&id) {
                let _ = chan.set_ingress_hold(true);
            }
        }
        Some(adm)
    }

    fn is_admitted(&self, id: ClientId) -> bool {
        self.admitted.contains(&id)
    }

    /// Retires `id` from the window (stream complete or client gone)
    /// and backfills its slot. Returns whether the window advanced.
    fn settle(&mut self, id: ClientId, st: &ChunkCollect, peers: &mut Peers) -> bool {
        if !self.admitted.remove(&id) {
            return false;
        }
        self.admit_next(st, peers)
    }

    fn admit_next(&mut self, st: &ChunkCollect, peers: &mut Peers) -> bool {
        while let Some(id) = self.queue.pop_front() {
            if st.completed(id) {
                // Streamed through despite the hold (a transport that
                // doesn't implement holds, or frames already buffered).
                continue;
            }
            let Some(chan) = peers.get_mut(&id) else {
                continue; // dropped while held
            };
            let _ = chan.set_ingress_hold(false);
            self.admitted.insert(id);
            return true;
        }
        false
    }

    /// Releases every hold still outstanding (stage end).
    fn finish(self, peers: &mut Peers) {
        for id in self.queue {
            if let Some(chan) = peers.get_mut(&id) {
                let _ = chan.set_ingress_hold(false);
            }
        }
    }
}

/// Flushes a backlogged write surfaced by a write-readiness event.
pub(crate) fn handle_write_event(
    peers: &mut Peers,
    ev: &Event,
    stage_name: &'static str,
    dropouts: &mut Vec<DetectedDropout>,
) {
    if !ev.writable {
        return;
    }
    let Some(id) = client_of(ev.token) else {
        return;
    };
    if let Some(chan) = peers.get_mut(&id) {
        if chan.try_flush().is_err() {
            drop_peer(
                peers,
                id,
                stage_name,
                None,
                DropKind::Disconnected,
                dropouts,
            );
        }
    }
}

/// Removes a peer and records the detection.
pub(crate) fn drop_peer(
    peers: &mut Peers,
    id: ClientId,
    stage: &'static str,
    chunk: Option<u16>,
    kind: DropKind,
    dropouts: &mut Vec<DetectedDropout>,
) {
    peers.remove(&id);
    dropouts.push(DetectedDropout {
        client: id,
        stage,
        chunk,
        kind,
    });
}

/// Broadcasts an envelope to every live peer; send failures become
/// detected dropouts (a write timeout is a deadline miss, anything else
/// a disconnect). On the reactor engine the sends only queue — callers
/// follow up with [`flush_sends`]. Returns downlink traffic.
///
/// The frame is encoded exactly **once** per broadcast (counted in
/// `dordis_broadcast_encodes_total`) into a refcounted wire message;
/// reactor-registered TCP channels queue the shared allocation instead
/// of copying it per peer, so a Setup carrying the model payload costs
/// one encoding for the whole cohort.
pub(crate) fn broadcast(
    peers: &mut Peers,
    env: &Envelope,
    dropouts: &mut Vec<DetectedDropout>,
    stage: &'static str,
    telemetry: &Telemetry,
) -> Traffic {
    let wire = wire_message(&env.encode());
    telemetry
        .counter("dordis_broadcast_encodes_total", &[])
        .inc();
    let frame_len = (wire.len() - 4) as u64;
    let mut down = Traffic::default();
    let ids: Vec<ClientId> = peers.keys().copied().collect();
    for id in ids {
        if let Some(chan) = peers.get_mut(&id) {
            match chan.send_wire_shared(&wire) {
                Ok(()) => down.add(frame_len),
                Err(e) => drop_peer(peers, id, stage, None, send_failure_kind(&e), dropouts),
            }
        }
    }
    down
}

/// Sends to one peer; failure becomes a detected dropout.
fn send_or_drop(
    peers: &mut Peers,
    id: ClientId,
    env: &Envelope,
    stage: &'static str,
    dropouts: &mut Vec<DetectedDropout>,
) {
    if let Some(chan) = peers.get_mut(&id) {
        if let Err(e) = send_env(chan.as_mut(), env) {
            drop_peer(peers, id, stage, None, send_failure_kind(&e), dropouts);
        }
    }
}

/// A send that timed out hit a stalled-but-connected peer (deadline
/// miss); any other failure is a disconnect.
fn send_failure_kind(e: &NetError) -> DropKind {
    match e {
        NetError::Timeout => DropKind::DeadlineMissed,
        _ => DropKind::Disconnected,
    }
}

/// Reactor engine only: drives write readiness until every queued
/// broadcast frame has drained (peers that cannot absorb theirs within
/// the stage timeout become detected dropouts). No-op on the sweep
/// engine, whose sends are blocking.
pub(crate) fn flush_sends(
    engine: Option<&mut Reactor>,
    peers: &mut Peers,
    dropouts: &mut Vec<DetectedDropout>,
    stage: &'static str,
    cfg: &CoordinatorConfig,
) {
    let Some(reactor) = engine else { return };
    let deadline = Instant::now() + cfg.stage_timeout;
    let (mut events, mut expired) = (Vec::new(), Vec::new());
    loop {
        let backlogged: Vec<ClientId> = peers
            .iter()
            .filter(|(_, c)| c.wants_write())
            .map(|(&id, _)| id)
            .collect();
        if backlogged.is_empty() {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            for id in backlogged {
                drop_peer(peers, id, stage, None, DropKind::DeadlineMissed, dropouts);
            }
            return;
        }
        if reactor
            .poll(&mut events, &mut expired, deadline - now)
            .is_err()
        {
            // The poller itself failed: readiness can no longer drive
            // these drains, so the undelivered peers must be recorded
            // as dropouts — silently returning would let them be
            // misattributed (or lost) at the next stage.
            for id in backlogged {
                drop_peer(peers, id, stage, None, DropKind::Disconnected, dropouts);
            }
            return;
        }
        for ev in &events {
            handle_write_event(peers, ev, stage, dropouts);
        }
    }
}

/// Best-effort abort notification to everyone still connected.
fn abort_all(peers: &mut Peers, round: u64, err: &SecAggError) {
    let env = Envelope::new(
        StageTag::Abort,
        round,
        codec::encode_abort(&err.to_string()),
    );
    let wire = wire_message(&env.encode());
    for chan in peers.values_mut() {
        let _ = chan.send_wire_shared(&wire);
        let _ = chan.try_flush();
    }
}

fn push_stage(
    stats: &mut RoundStats,
    telemetry: &Telemetry,
    name: &'static str,
    up: &Traffic,
    down: Traffic,
) {
    if telemetry.is_enabled() {
        telemetry
            .counter(
                "dordis_frame_bytes_total",
                &[("direction", "in"), ("stage", name)],
            )
            .add(up.total);
        telemetry
            .counter(
                "dordis_frame_bytes_total",
                &[("direction", "out"), ("stage", name)],
            )
            .add(down.total);
    }
    stats.stages.push(StageTraffic {
        stage: name,
        uplink_total: up.total,
        uplink_max: up.max,
        downlink_total: down.total,
        downlink_max: down.max,
    });
}
