//! The round coordinator: drives the `dordis-secagg` server state
//! machine over a real transport, stage by stage, with per-stage
//! deadlines.
//!
//! This is the networked replacement for the driver's scripted
//! [`DropoutSchedule`]: here nobody *announces* a dropout — a client
//! that disconnects or stays silent past the stage deadline is
//! *detected* and excluded, exactly as in the deployed system the paper
//! evaluates (§6.1 measures dropout as missed per-stage responses).
//!
//! ## The per-(stage, chunk) data plane
//!
//! Control-plane stages (key advertisement, share routing, consistency,
//! share collection) are round-global. The data plane is chunked
//! (§4.1): masked inputs arrive as one frame per [`ChunkPlan`] chunk,
//! collected by a per-(stage, chunk) state machine — chunk `c`'s frames
//! are decoded, validated, and aggregated into the server's per-chunk
//! state *while chunk `c+1`'s frames are still in flight*, and the
//! per-stage deadline applies per chunk (the clock restarts when a chunk
//! completes). Symmetrically, per-chunk unmasking is interleaved with
//! the noise-share collection when XNoise seed recovery is needed, so
//! the s-comp and comm resources overlap end to end as in Figure 12. A
//! client whose chunk stream stops partway is a detected dropout: U3
//! only admits clients that delivered *every* chunk.
//!
//! ## Readiness-driven collection
//!
//! By default ([`CollectMode::Reactor`]) the three collection loops —
//! join, per-(stage, chunk) masked-input collection, and the
//! unmasking/noise-share interleave — are driven by
//! [`reactor`](crate::reactor) events: the coordinator thread sleeps in
//! `epoll_pwait` until a frame, a disconnect, or a deadline is actually
//! ready, so one thread serves hundreds of chunk-streaming clients with
//! `O(events)` wake-ups. The legacy round-robin sweep over blocking
//! channels (`recv_deadline` in [`CoordinatorConfig::tick`] slices,
//! `O(clients × ticks)`) survives as [`CollectMode::PollSweep`] for the
//! comparison benches. Both modes run the identical chunk state machine
//! and produce bit-equal outcomes.
//!
//! [`DropoutSchedule`]: dordis_secagg::driver::DropoutSchedule

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use dordis_pipeline::ChunkPlan;
use dordis_secagg::driver::{RoundStats, StageTraffic};
use dordis_secagg::server::{RoundOutcome, Server};
use dordis_secagg::{ClientId, RoundParams, SecAggError, ThreatModel};

use crate::codec::{
    self, decode_advertised_keys, decode_consistency_signature, decode_encrypted_shares,
    decode_list, decode_masked_input, decode_noise_share_response, decode_unmasking_response,
    encode_list, Encode, Envelope, FrameContext, StageTag,
};
use crate::reactor::{Event, EventedChannel, Reactor, ReactorStats, Token};
use crate::transport::{recv_env, send_env, Acceptor};
use crate::NetError;

/// How the coordinator discovers frames and deadlines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CollectMode {
    /// Readiness-driven: one `epoll_pwait` sleep per batch of events —
    /// `O(events)` wake-ups per round. The default.
    #[default]
    Reactor,
    /// The legacy round-robin sweep: one blocking `recv_deadline` slice
    /// per pending client per tick — `O(clients × ticks)`. Kept for the
    /// `reactor_scale` comparison bench and as a fallback.
    PollSweep,
}

/// Configuration of one coordinated round.
pub struct CoordinatorConfig {
    /// Protocol parameters; `params.clients` is the sampled set — ids
    /// that never join are advertise-stage dropouts.
    pub params: RoundParams,
    /// How long to wait for the full sampled set to join before starting
    /// with whoever arrived.
    pub join_timeout: Duration,
    /// Per-stage response deadline; a silent client past this is a
    /// detected dropout. During masked-input collection the deadline
    /// applies *per chunk*: the clock restarts whenever a chunk
    /// completes.
    pub stage_timeout: Duration,
    /// Requested chunk count `m` for the data plane (clamped to ≥ 1).
    /// The realized count after byte alignment may be smaller; clients
    /// re-derive the identical plan from this count via the Setup
    /// broadcast.
    pub chunks: usize,
    /// Injected s-comp cost for the *whole vector*, spread over chunks
    /// proportionally to their element counts and spent once per chunk
    /// at aggregation and once at unmasking. Emulates the server-side
    /// compute of models too large to run in-repo, so benches and tests
    /// can realize Figure 12's comm/compute overlap on a loopback
    /// transport. `None` injects nothing (production).
    pub chunk_compute: Option<Duration>,
    /// Scheduling granularity: the reactor's timer-wheel tick, and the
    /// poll-slice length of the legacy sweep (formerly three scattered
    /// 10 ms constants).
    pub tick: Duration,
    /// Which collection engine drives the round.
    pub mode: CollectMode,
}

impl CoordinatorConfig {
    /// Default scheduling granularity (see [`CoordinatorConfig::tick`]).
    pub const DEFAULT_TICK: Duration = Duration::from_millis(10);

    /// A config with the default tick and collection mode.
    #[must_use]
    pub fn new(
        params: RoundParams,
        join_timeout: Duration,
        stage_timeout: Duration,
        chunks: usize,
        chunk_compute: Option<Duration>,
    ) -> Self {
        CoordinatorConfig {
            params,
            join_timeout,
            stage_timeout,
            chunks,
            chunk_compute,
            tick: Self::DEFAULT_TICK,
            mode: CollectMode::default(),
        }
    }

    /// An unchunked config with no injected compute — the pre-chunking
    /// behaviour.
    #[must_use]
    pub fn single(params: RoundParams, join_timeout: Duration, stage_timeout: Duration) -> Self {
        Self::new(params, join_timeout, stage_timeout, 1, None)
    }

    /// Overrides the collection engine (builder-style).
    #[must_use]
    pub fn with_mode(mut self, mode: CollectMode) -> Self {
        self.mode = mode;
        self
    }
}

/// What the coordinator observed about one departed client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DropKind {
    /// Never joined the round.
    NeverJoined,
    /// Connection closed (crash / kill).
    Disconnected,
    /// Joined but missed a stage deadline while connected.
    DeadlineMissed,
    /// Sent an explicit abort (detected an inconsistency).
    Aborted,
    /// Sent garbage or an out-of-protocol message.
    ProtocolViolation,
}

/// A detected departure: who, at which stage (and chunk, for data-plane
/// stages), and how.
#[derive(Clone, Debug)]
pub struct DetectedDropout {
    /// The client.
    pub client: ClientId,
    /// Stage name at which the departure was detected.
    pub stage: &'static str,
    /// Chunk the collection machine was on when it detected the
    /// departure (None for round-global stages).
    pub chunk: Option<u16>,
    /// What was observed.
    pub kind: DropKind,
}

/// Result of a coordinated round.
pub struct NetRoundReport {
    /// The protocol outcome (same type the in-memory driver returns).
    pub outcome: RoundOutcome,
    /// Per-stage traffic, measured as actual framed bytes on the wire
    /// (envelope headers included — unlike the driver's `wire_bytes()`
    /// accounting, which counts message bodies only).
    pub stats: RoundStats,
    /// Every detected departure, in detection order.
    pub dropouts: Vec<DetectedDropout>,
    /// Realized chunk count of the round's data plane.
    pub chunks: usize,
    /// Event-loop wake-up accounting ([`CollectMode::Reactor`] only) —
    /// the scale tests assert `polls` stays `O(events)`, not
    /// `O(clients × ticks)`.
    pub reactor: Option<ReactorStats>,
}

/// Per-stage uplink accumulator.
#[derive(Default)]
struct Traffic {
    total: u64,
    max: u64,
}

impl Traffic {
    fn add(&mut self, bytes: u64) {
        self.total += bytes;
        self.max = self.max.max(bytes);
    }
}

/// Live connections, keyed by authenticated-at-join client id.
type Peers = BTreeMap<ClientId, Box<dyn EventedChannel>>;

/// Background work a collection loop interleaves between polls (chunk
/// unmasking during noise-share collection). Returns whether it did
/// work (so the reactor knows to poll non-blockingly and come back).
/// Errors abort the round.
type IdleWork<'a> = dyn FnMut(&mut Server) -> Result<bool, SecAggError> + 'a;

/// Reactor token namespace: client tokens are the id itself; tokens at
/// or above `JOIN_BASE` are provisional (unauthenticated) connections;
/// the topmost values are reserved for the stage timer and the waker.
const JOIN_BASE: u64 = 1 << 40;

/// Timer token for the active stage/chunk deadline.
const STAGE_TOKEN: Token = Token(u64::MAX - 2);

fn client_token(id: ClientId) -> Token {
    Token(u64::from(id))
}

fn client_of(token: Token) -> Option<ClientId> {
    (token.0 < JOIN_BASE).then_some(token.0 as ClientId)
}

/// Runs one full round over `acceptor`.
///
/// Accepts joins until every sampled client is present or
/// `join_timeout` passes, then drives the stages. Clients that vanish
/// mid-round are detected per stage (per chunk, on the data plane) and
/// the protocol continues as long as the threshold holds.
///
/// # Errors
///
/// [`NetError::SecAgg`] when the protocol aborts (e.g. below
/// threshold); transport errors only for coordinator-side failures
/// (individual client failures are dropouts, not errors).
pub fn run_coordinator(
    acceptor: &mut dyn Acceptor,
    cfg: &CoordinatorConfig,
) -> Result<NetRoundReport, NetError> {
    cfg.params.validate().map_err(NetError::SecAgg)?;
    let round = cfg.params.round;
    let requested_chunks = cfg.chunks.clamp(1, usize::from(u16::MAX));
    let plan = ChunkPlan::aligned(
        cfg.params.vector_len,
        requested_chunks,
        cfg.params.bit_width,
    )
    .map_err(|e| NetError::Protocol(format!("chunk plan: {e}")))?;
    let mut stats = RoundStats::default();
    let mut dropouts: Vec<DetectedDropout> = Vec::new();

    let mut engine = match cfg.mode {
        CollectMode::Reactor => Some(Reactor::new(cfg.tick)?),
        CollectMode::PollSweep => None,
    };

    // ---- Join phase. ----
    let mut peers = match engine.as_mut() {
        Some(reactor) => accept_joins_reactor(reactor, acceptor, cfg)?,
        None => accept_joins_sweep(acceptor, cfg)?,
    };
    for &id in &cfg.params.clients {
        if !peers.contains_key(&id) {
            dropouts.push(DetectedDropout {
                client: id,
                stage: "Join",
                chunk: None,
                kind: DropKind::NeverJoined,
            });
        }
    }

    let mut server =
        Server::with_chunks(cfg.params.clone(), plan.clone()).map_err(NetError::SecAgg)?;
    let mut no_idle = |_: &mut Server| Ok(false);

    // ---- Setup broadcast (params + the requested chunk count). ----
    let setup = Envelope::new(
        StageTag::Setup,
        round,
        codec::encode_setup(&cfg.params, requested_chunks as u16),
    );
    broadcast(&mut peers, &setup, &mut dropouts, "Setup");
    flush_sends(engine.as_mut(), &mut peers, &mut dropouts, "Setup", cfg);

    let joined: Vec<ClientId> = peers.keys().copied().collect();

    // ---- Stage 0: AdvertiseKeys. ----
    let mut up = Traffic::default();
    let bodies = collect_stage(
        engine.as_mut(),
        &mut peers,
        &joined,
        StageTag::AdvertiseKeys,
        round,
        cfg,
        "AdvertiseKeys",
        &mut dropouts,
        &mut up,
        &mut server,
        &mut no_idle,
    )
    .map_err(|e| abort_round(&mut peers, round, e))?;
    let mut advs = Vec::with_capacity(bodies.len());
    for (id, body) in &bodies {
        match decode_advertised_keys(body) {
            Ok(a) if a.client == *id => advs.push(a),
            _ => drop_peer(
                &mut peers,
                *id,
                "AdvertiseKeys",
                None,
                DropKind::ProtocolViolation,
                &mut dropouts,
            ),
        }
    }
    let roster = server.collect_advertisements(advs).map_err(|e| {
        abort_all(&mut peers, round, &e);
        NetError::SecAgg(e)
    })?;
    let roster_env = Envelope::new(StageTag::Roster, round, encode_list(&roster));
    let down = broadcast(&mut peers, &roster_env, &mut dropouts, "AdvertiseKeys");
    flush_sends(
        engine.as_mut(),
        &mut peers,
        &mut dropouts,
        "AdvertiseKeys",
        cfg,
    );
    push_stage(&mut stats, "AdvertiseKeys", &up, down);

    // ---- Stage 1: ShareKeys. ----
    let expected: Vec<ClientId> = roster
        .iter()
        .map(|a| a.client)
        .filter(|id| peers.contains_key(id))
        .collect();
    let mut up = Traffic::default();
    let bodies = collect_stage(
        engine.as_mut(),
        &mut peers,
        &expected,
        StageTag::ShareKeys,
        round,
        cfg,
        "ShareKeys",
        &mut dropouts,
        &mut up,
        &mut server,
        &mut no_idle,
    )
    .map_err(|e| abort_round(&mut peers, round, e))?;
    let mut all_cts = Vec::new();
    for (id, body) in &bodies {
        match decode_list(body, decode_encrypted_shares) {
            Ok(cts) if cts.iter().all(|ct| ct.from == *id) => all_cts.extend(cts),
            _ => drop_peer(
                &mut peers,
                *id,
                "ShareKeys",
                None,
                DropKind::ProtocolViolation,
                &mut dropouts,
            ),
        }
    }
    let mut inboxes = server.route_shares(all_cts).map_err(|e| {
        abort_all(&mut peers, round, &e);
        NetError::SecAgg(e)
    })?;
    let mut down = Traffic::default();
    let inbox_ids: Vec<ClientId> = peers.keys().copied().collect();
    for id in inbox_ids {
        let cts = inboxes.remove(&id).unwrap_or_default();
        let env = Envelope::new(StageTag::Inbox, round, encode_list(&cts));
        down.add(env.encode().len() as u64);
        send_or_drop(&mut peers, id, &env, "ShareKeys", &mut dropouts);
    }
    flush_sends(engine.as_mut(), &mut peers, &mut dropouts, "ShareKeys", cfg);
    push_stage(&mut stats, "ShareKeys", &up, down);

    // ---- Stage 2: MaskedInputCollection, per (stage, chunk). ----
    let u2: BTreeSet<ClientId> = server.u2().iter().copied().collect();
    let expected: Vec<ClientId> = peers.keys().copied().filter(|id| u2.contains(id)).collect();
    let up = match engine.as_mut() {
        Some(reactor) => collect_masked_chunks_reactor(
            reactor,
            &mut peers,
            &expected,
            round,
            cfg,
            &plan,
            &mut server,
            &mut dropouts,
        ),
        None => collect_masked_chunks_sweep(
            &mut peers,
            &expected,
            round,
            cfg,
            &plan,
            &mut server,
            &mut dropouts,
        ),
    }
    .map_err(|e| abort_round(&mut peers, round, e))?;
    let u3 = server.finalize_masked().map_err(|e| {
        abort_all(&mut peers, round, &e);
        NetError::SecAgg(e)
    })?;
    let u3_env = Envelope::new(
        StageTag::SurvivorSet,
        round,
        dordis_secagg::messages::IdList(u3.clone()).encoded(),
    );
    let down = broadcast(&mut peers, &u3_env, &mut dropouts, "MaskedInputCollection");
    flush_sends(
        engine.as_mut(),
        &mut peers,
        &mut dropouts,
        "MaskedInputCollection",
        cfg,
    );
    push_stage(&mut stats, "MaskedInputCollection", &up, down);

    // ---- Stage 3: ConsistencyCheck (malicious only). ----
    if cfg.params.threat_model == ThreatModel::Malicious {
        let expected: Vec<ClientId> = u3
            .iter()
            .copied()
            .filter(|v| peers.contains_key(v))
            .collect();
        let mut up = Traffic::default();
        let bodies = collect_stage(
            engine.as_mut(),
            &mut peers,
            &expected,
            StageTag::ConsistencySig,
            round,
            cfg,
            "ConsistencyCheck",
            &mut dropouts,
            &mut up,
            &mut server,
            &mut no_idle,
        )
        .map_err(|e| abort_round(&mut peers, round, e))?;
        let mut sigs = Vec::new();
        for (id, body) in &bodies {
            match decode_consistency_signature(body) {
                Ok(s) if s.client == *id => sigs.push(s),
                _ => drop_peer(
                    &mut peers,
                    *id,
                    "ConsistencyCheck",
                    None,
                    DropKind::ProtocolViolation,
                    &mut dropouts,
                ),
            }
        }
        let list = server.collect_consistency(sigs).map_err(|e| {
            abort_all(&mut peers, round, &e);
            NetError::SecAgg(e)
        })?;
        let env = Envelope::new(
            StageTag::SignatureList,
            round,
            codec::encode_signature_list(&list),
        );
        let down = broadcast(&mut peers, &env, &mut dropouts, "ConsistencyCheck");
        flush_sends(
            engine.as_mut(),
            &mut peers,
            &mut dropouts,
            "ConsistencyCheck",
            cfg,
        );
        push_stage(&mut stats, "ConsistencyCheck", &up, down);
    }

    // ---- Stage 4: Unmasking (share collection is round-global). ----
    let expected: Vec<ClientId> = u3
        .iter()
        .copied()
        .filter(|v| peers.contains_key(v))
        .collect();
    let mut up = Traffic::default();
    let bodies = collect_stage(
        engine.as_mut(),
        &mut peers,
        &expected,
        StageTag::Unmasking,
        round,
        cfg,
        "Unmasking",
        &mut dropouts,
        &mut up,
        &mut server,
        &mut no_idle,
    )
    .map_err(|e| abort_round(&mut peers, round, e))?;
    let mut responses = Vec::new();
    for (id, body) in &bodies {
        match decode_unmasking_response(body) {
            Ok(r) if r.client == *id => responses.push(r),
            _ => drop_peer(
                &mut peers,
                *id,
                "Unmasking",
                None,
                DropKind::ProtocolViolation,
                &mut dropouts,
            ),
        }
    }
    server.reconstruct_unmasking(responses).map_err(|e| {
        abort_all(&mut peers, round, &e);
        NetError::SecAgg(e)
    })?;
    let u5 = server.u5().to_vec();

    // Per-chunk unmasking advances between noise-share polls (chunk
    // c + 1 can be collected/unmasked while chunk c's compute runs).
    let total_chunks = plan.chunks();
    let mut next_unmask = 0usize;
    let chunk_compute = cfg.chunk_compute;
    let plan_ref = &plan;
    let mut unmask_step = move |server: &mut Server| -> Result<bool, SecAggError> {
        if next_unmask < total_chunks {
            server.unmask_chunk(next_unmask)?;
            chunk_sleep(chunk_compute, plan_ref, next_unmask);
            next_unmask += 1;
            Ok(true)
        } else {
            Ok(false)
        }
    };

    // ---- Stage 5: ExcessiveNoiseRemoval (only if needed). ----
    if server.pending_seed_owners().is_empty() {
        let down_u5 = Traffic::default();
        push_stage(&mut stats, "Unmasking", &up, down_u5);
    } else {
        let u5_env = Envelope::new(
            StageTag::ReadySet,
            round,
            dordis_secagg::messages::IdList(u5.clone()).encoded(),
        );
        let down = broadcast(&mut peers, &u5_env, &mut dropouts, "Unmasking");
        flush_sends(engine.as_mut(), &mut peers, &mut dropouts, "Unmasking", cfg);
        push_stage(&mut stats, "Unmasking", &up, down);

        let expected: Vec<ClientId> = u5
            .iter()
            .copied()
            .filter(|v| peers.contains_key(v))
            .collect();
        let mut up = Traffic::default();
        let bodies = collect_stage(
            engine.as_mut(),
            &mut peers,
            &expected,
            StageTag::NoiseShares,
            round,
            cfg,
            "ExcessiveNoiseRemoval",
            &mut dropouts,
            &mut up,
            &mut server,
            &mut unmask_step,
        )
        .map_err(|e| abort_round(&mut peers, round, e))?;
        let mut responses = Vec::new();
        for (id, body) in &bodies {
            match decode_noise_share_response(body) {
                Ok(r) if r.client == *id => responses.push(r),
                _ => drop_peer(
                    &mut peers,
                    *id,
                    "ExcessiveNoiseRemoval",
                    None,
                    DropKind::ProtocolViolation,
                    &mut dropouts,
                ),
            }
        }
        server.collect_noise_shares(responses).map_err(|e| {
            abort_all(&mut peers, round, &e);
            NetError::SecAgg(e)
        })?;
        push_stage(&mut stats, "ExcessiveNoiseRemoval", &up, Traffic::default());
    }

    // Unmask whatever chunks the idle interleaving did not reach.
    for _ in 0..total_chunks {
        unmask_step(&mut server).map_err(|e| {
            abort_all(&mut peers, round, &e);
            NetError::SecAgg(e)
        })?;
    }

    // ---- Finished broadcast. ----
    let fin = Envelope::new(
        StageTag::Finished,
        round,
        dordis_secagg::messages::IdList(u3.clone()).encoded(),
    );
    broadcast(&mut peers, &fin, &mut dropouts, "Finished");
    flush_sends(engine.as_mut(), &mut peers, &mut dropouts, "Finished", cfg);

    debug_assert!(server.privacy_invariant_holds());
    for d in &dropouts {
        if d.kind == DropKind::Aborted {
            stats.aborted.push(d.client);
        }
    }
    Ok(NetRoundReport {
        outcome: server.finish(),
        stats,
        dropouts,
        chunks: total_chunks,
        reactor: engine.map(|r| r.stats),
    })
}

/// Maps a failed stage to a round abort (notifying live peers when the
/// failure is a protocol-level one).
fn abort_round(peers: &mut Peers, round: u64, e: NetError) -> NetError {
    if let NetError::SecAgg(err) = &e {
        abort_all(peers, round, err);
    }
    e
}

/// Sleeps the injected per-chunk s-comp cost: the whole-vector cost
/// scaled by the chunk's share of the elements.
fn chunk_sleep(chunk_compute: Option<Duration>, plan: &ChunkPlan, chunk: usize) {
    let Some(total) = chunk_compute else { return };
    let d = plan.vector_len().max(1);
    let frac = plan.chunk_len(chunk) as f64 / d as f64;
    let dur = total.mul_f64(frac);
    if !dur.is_zero() {
        std::thread::sleep(dur);
    }
}

// ---------------------------------------------------------------------
// Join phase.
// ---------------------------------------------------------------------

/// Validates one Join envelope against the sampled set. `Ok` is the
/// authenticated id; `Err` is an optional abort reply for the peer.
fn vet_join(
    env_result: Result<Envelope, NetError>,
    sampled: &BTreeSet<ClientId>,
    present: &Peers,
    round: u64,
) -> Result<ClientId, Option<Envelope>> {
    match env_result {
        Ok(env) if env.stage == StageTag::Join => match codec::decode_join(&env.body) {
            Ok(id) if sampled.contains(&id) && !present.contains_key(&id) => Ok(id),
            Ok(id) => {
                let reason = if sampled.contains(&id) {
                    "duplicate join"
                } else {
                    "not in the sampled set"
                };
                Err(Some(Envelope::new(
                    StageTag::Abort,
                    round,
                    codec::encode_abort(reason),
                )))
            }
            Err(_) => Err(None), // unidentifiable garbage: not a participant
        },
        Err(NetError::Version { got, expected }) => {
            // A peer speaking another wire version must be told to
            // upgrade, not silently counted as a never-join.
            // Best-effort: its decoder may reject our frame too, but
            // the connection closes with the reason on the wire.
            Err(Some(Envelope::new(
                StageTag::Abort,
                round,
                codec::encode_abort(&format!(
                    "wire version mismatch: you speak v{got}, this coordinator v{expected}"
                )),
            )))
        }
        _ => Err(None), // wrong first message or nothing at all
    }
}

/// Accepts connections and their Join envelopes until every sampled id
/// is present or the join deadline passes — blocking-sweep engine.
fn accept_joins_sweep(
    acceptor: &mut dyn Acceptor,
    cfg: &CoordinatorConfig,
) -> Result<Peers, NetError> {
    let deadline = Instant::now() + cfg.join_timeout;
    let sampled: BTreeSet<ClientId> = cfg.params.clients.iter().copied().collect();
    let mut peers: Peers = BTreeMap::new();
    while peers.len() < sampled.len() {
        let mut chan = match acceptor.accept(deadline) {
            Ok(c) => c,
            Err(NetError::Timeout) => break,
            Err(e) => return Err(e),
        };
        // The Join must arrive promptly once connected.
        let join_deadline = Instant::now()
            + cfg
                .stage_timeout
                .min(deadline.saturating_duration_since(Instant::now()));
        // Joins carry round 0: the client learns the real round id from
        // the Setup broadcast.
        match vet_join(
            recv_env(chan.as_mut(), join_deadline),
            &sampled,
            &peers,
            cfg.params.round,
        ) {
            Ok(id) => {
                peers.insert(id, chan);
            }
            Err(Some(reply)) => {
                let _ = send_env(chan.as_mut(), &reply);
            }
            Err(None) => {}
        }
    }
    Ok(peers)
}

/// Reactor-driven join phase: accepted connections are registered under
/// provisional tokens and their Join frames collected by readiness, so
/// one slow joiner no longer serializes everyone behind it. A connection
/// that produces no valid Join within the stage timeout is discarded.
fn accept_joins_reactor(
    reactor: &mut Reactor,
    acceptor: &mut dyn Acceptor,
    cfg: &CoordinatorConfig,
) -> Result<Peers, NetError> {
    let deadline = Instant::now() + cfg.join_timeout;
    let sampled: BTreeSet<ClientId> = cfg.params.clients.iter().copied().collect();
    let mut peers: Peers = BTreeMap::new();
    let mut awaiting: BTreeMap<u64, Box<dyn EventedChannel>> = BTreeMap::new();
    let mut next_provisional = JOIN_BASE;
    let (mut events, mut expired) = (Vec::new(), Vec::new());
    while peers.len() < sampled.len() {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        // Accept for at most one tick so pending Join frames keep being
        // serviced between arrivals.
        match acceptor.accept((now + cfg.tick).min(deadline)) {
            Ok(mut chan) => {
                let token = Token(next_provisional);
                next_provisional += 1;
                chan.register(reactor, token)?;
                reactor.arm_deadline(token, (Instant::now() + cfg.stage_timeout).min(deadline));
                awaiting.insert(token.0, chan);
            }
            Err(NetError::Timeout) => {}
            Err(e) => return Err(e),
        }
        reactor.poll(&mut events, &mut expired, Duration::ZERO)?;
        for ev in &events {
            let Some(mut chan) = awaiting.remove(&ev.token.0) else {
                continue;
            };
            match chan.try_recv() {
                Ok(Some(frame)) => {
                    reactor.cancel_deadline(ev.token);
                    match vet_join(Envelope::decode(&frame), &sampled, &peers, cfg.params.round) {
                        Ok(id) => {
                            chan.register(reactor, client_token(id))?;
                            peers.insert(id, chan);
                        }
                        Err(Some(reply)) => {
                            let _ = send_env(chan.as_mut(), &reply);
                            let _ = chan.try_flush();
                        }
                        Err(None) => {}
                    }
                }
                Ok(None) => {
                    // Frame still incomplete: keep waiting.
                    awaiting.insert(ev.token.0, chan);
                }
                Err(_) => {
                    reactor.cancel_deadline(ev.token);
                }
            }
        }
        for token in &expired {
            // Connected but never completed a Join: not a participant.
            awaiting.remove(&token.0);
        }
    }
    // The sampled set completed (or the join window closed) with some
    // connections still awaiting a verdict. Any Join already on the wire
    // gets vetted so a rejected peer hears *why* instead of hanging;
    // rejection is the only possible verdict once the set is full, and
    // on a deadline exit a late valid join is dropped exactly as the
    // sweep engine drops it.
    for (token, mut chan) in awaiting {
        reactor.cancel_deadline(Token(token));
        if let Ok(Some(frame)) = chan.try_recv() {
            if let Err(Some(reply)) =
                vet_join(Envelope::decode(&frame), &sampled, &peers, cfg.params.round)
            {
                let _ = send_env(chan.as_mut(), &reply);
                let _ = chan.try_flush();
            }
        }
    }
    Ok(peers)
}

// ---------------------------------------------------------------------
// Masked-input collection (per stage, chunk).
// ---------------------------------------------------------------------

/// Shared per-chunk collection state.
struct ChunkCollect {
    /// Clients still owing each chunk.
    pendings: Vec<BTreeSet<ClientId>>,
    /// Buffered chunk bodies awaiting aggregation.
    bodies: Vec<BTreeMap<ClientId, Vec<u8>>>,
    /// Uplink bytes per client (the per-stage max is over whole chunk
    /// streams, not individual frames).
    per_client: BTreeMap<ClientId, u64>,
    /// Chunk currently being collected/aggregated.
    active: usize,
}

impl ChunkCollect {
    fn new(expected: &[ClientId], peers: &Peers, m: usize) -> ChunkCollect {
        let base: BTreeSet<ClientId> = expected
            .iter()
            .copied()
            .filter(|id| peers.contains_key(id))
            .collect();
        ChunkCollect {
            pendings: vec![base; m],
            bodies: vec![BTreeMap::new(); m],
            per_client: BTreeMap::new(),
            active: 0,
        }
    }

    /// First chunk `id` still owes (where its stream died), for dropout
    /// attribution; falls back to the active chunk.
    fn died_at(&self, id: ClientId) -> u16 {
        self.pendings
            .iter()
            .position(|p| p.contains(&id))
            .unwrap_or(self.active) as u16
    }

    fn remove_everywhere(&mut self, id: ClientId) {
        for p in &mut self.pendings {
            p.remove(&id);
        }
    }

    /// Files one already-received frame. Returns `false` if the client
    /// was dropped (stream is dead) and draining should stop.
    #[allow(clippy::too_many_arguments)]
    fn file_frame(
        &mut self,
        peers: &mut Peers,
        id: ClientId,
        frame: &[u8],
        round: u64,
        m: usize,
        dropouts: &mut Vec<DetectedDropout>,
    ) -> bool {
        *self.per_client.entry(id).or_default() += frame.len() as u64;
        match Envelope::decode(frame) {
            Ok(env)
                if env.stage == StageTag::MaskedInput
                    && env.round == round
                    && usize::from(env.chunk) < m =>
            {
                let c = usize::from(env.chunk);
                self.pendings[c].remove(&id);
                self.bodies[c].insert(id, env.body);
                true
            }
            Ok(env) if env.stage == StageTag::Abort => {
                let chunk = self.active as u16;
                self.remove_everywhere(id);
                drop_peer(
                    peers,
                    id,
                    "MaskedInputCollection",
                    Some(chunk),
                    DropKind::Aborted,
                    dropouts,
                );
                false
            }
            _ => {
                let chunk = self.active as u16;
                self.remove_everywhere(id);
                drop_peer(
                    peers,
                    id,
                    "MaskedInputCollection",
                    Some(chunk),
                    DropKind::ProtocolViolation,
                    dropouts,
                );
                false
            }
        }
    }

    /// Aggregates the active chunk into the server (its pending set must
    /// be empty) and advances to the next one.
    fn aggregate_active(
        &mut self,
        peers: &mut Peers,
        round: u64,
        cfg: &CoordinatorConfig,
        plan: &ChunkPlan,
        server: &mut Server,
        dropouts: &mut Vec<DetectedDropout>,
    ) -> Result<(), NetError> {
        let chunk_bodies = std::mem::take(&mut self.bodies[self.active]);
        let ctx = FrameContext {
            stage: StageTag::MaskedInput,
            round,
            chunk: self.active as u16,
        };
        let mut inputs = Vec::with_capacity(chunk_bodies.len());
        for (id, body) in &chunk_bodies {
            if !peers.contains_key(id) {
                continue;
            }
            match decode_masked_input(body, plan.bit_width(), plan.chunk_len(self.active), ctx) {
                Ok(mi) if mi.client == *id => inputs.push(mi),
                _ => {
                    let chunk = self.active as u16;
                    self.remove_everywhere(*id);
                    drop_peer(
                        peers,
                        *id,
                        "MaskedInputCollection",
                        Some(chunk),
                        DropKind::ProtocolViolation,
                        dropouts,
                    );
                }
            }
        }
        server
            .collect_masked_chunk(self.active, inputs)
            .map_err(NetError::SecAgg)?;
        chunk_sleep(cfg.chunk_compute, plan, self.active);
        self.active += 1;
        Ok(())
    }

    fn uplink(&self) -> Traffic {
        let mut up = Traffic::default();
        for &bytes in self.per_client.values() {
            up.add(bytes);
        }
        up
    }
}

/// The per-(stage, chunk) masked-input collector — blocking-sweep
/// engine. Chunk `c + 1`'s frames accumulate (from fast clients and
/// channel buffers) while chunk `c` is decoded, validated, and
/// aggregated into the server's per-chunk state; the stage deadline
/// restarts per chunk. A client whose stream stops — disconnect,
/// garbage, or silence past the active chunk's deadline — is dropped
/// from every remaining chunk; its partial deliveries never reach a sum
/// because U3 requires all chunks.
fn collect_masked_chunks_sweep(
    peers: &mut Peers,
    expected: &[ClientId],
    round: u64,
    cfg: &CoordinatorConfig,
    plan: &ChunkPlan,
    server: &mut Server,
    dropouts: &mut Vec<DetectedDropout>,
) -> Result<Traffic, NetError> {
    let m = plan.chunks();
    let stage_name = "MaskedInputCollection";
    let mut st = ChunkCollect::new(expected, peers, m);
    let mut deadline = Instant::now() + cfg.stage_timeout;

    while st.active < m {
        st.pendings[st.active].retain(|id| peers.contains_key(id));
        if st.pendings[st.active].is_empty() {
            // Chunk complete: aggregate it while later chunks keep
            // arriving into the transport buffers.
            st.aggregate_active(peers, round, cfg, plan, server, dropouts)?;
            deadline = Instant::now() + cfg.stage_timeout;
            continue;
        }
        if Instant::now() >= deadline {
            let late: Vec<ClientId> = st.pendings[st.active].iter().copied().collect();
            for id in late {
                let chunk = st.active as u16;
                st.remove_everywhere(id);
                drop_peer(
                    peers,
                    id,
                    stage_name,
                    Some(chunk),
                    DropKind::DeadlineMissed,
                    dropouts,
                );
            }
            continue;
        }
        let ids: Vec<ClientId> = st.pendings[st.active].iter().copied().collect();
        for id in ids {
            let Some(chan) = peers.get_mut(&id) else {
                st.remove_everywhere(id);
                continue;
            };
            let slice = (Instant::now() + cfg.tick).min(deadline);
            match chan.recv_deadline(slice) {
                Ok(frame) => {
                    st.file_frame(peers, id, &frame, round, m, dropouts);
                }
                Err(NetError::Timeout) => {}
                Err(_) => {
                    let chunk = st.died_at(id);
                    st.remove_everywhere(id);
                    drop_peer(
                        peers,
                        id,
                        stage_name,
                        Some(chunk),
                        DropKind::Disconnected,
                        dropouts,
                    );
                }
            }
        }
    }
    Ok(st.uplink())
}

/// The per-(stage, chunk) masked-input collector — reactor engine. Same
/// state machine, but frames, disconnects, and per-chunk deadlines
/// arrive as events: the thread sleeps in the poller while clients
/// stream, instead of sweeping every pending channel per tick.
#[allow(clippy::too_many_arguments)]
fn collect_masked_chunks_reactor(
    reactor: &mut Reactor,
    peers: &mut Peers,
    expected: &[ClientId],
    round: u64,
    cfg: &CoordinatorConfig,
    plan: &ChunkPlan,
    server: &mut Server,
    dropouts: &mut Vec<DetectedDropout>,
) -> Result<Traffic, NetError> {
    let m = plan.chunks();
    let stage_name = "MaskedInputCollection";
    let mut st = ChunkCollect::new(expected, peers, m);
    reactor.arm_deadline(STAGE_TOKEN, Instant::now() + cfg.stage_timeout);

    // Initial sweep: frames may already be buffered (sent between the
    // Inbox flush and this loop), and their readiness may have been
    // consumed by an earlier poll.
    let ids: Vec<ClientId> = st.pendings[0].iter().copied().collect();
    for id in ids {
        drain_chunk_frames(&mut st, peers, id, round, m, stage_name, dropouts);
    }

    let (mut events, mut expired) = (Vec::new(), Vec::new());
    loop {
        // Aggregate every chunk whose pending set has emptied; the
        // deadline clock restarts per completed chunk.
        let mut aggregated = false;
        while st.active < m {
            st.pendings[st.active].retain(|id| peers.contains_key(id));
            if !st.pendings[st.active].is_empty() {
                break;
            }
            st.aggregate_active(peers, round, cfg, plan, server, dropouts)?;
            aggregated = true;
        }
        if st.active == m {
            break;
        }
        if aggregated {
            reactor.arm_deadline(STAGE_TOKEN, Instant::now() + cfg.stage_timeout);
        }
        reactor.poll(&mut events, &mut expired, cfg.stage_timeout)?;
        for ev in &events {
            handle_write_event(peers, ev, stage_name, dropouts);
            let Some(id) = client_of(ev.token) else {
                continue;
            };
            if !(ev.readable || ev.closed) || !peers.contains_key(&id) {
                continue;
            }
            drain_chunk_frames(&mut st, peers, id, round, m, stage_name, dropouts);
        }
        if expired.contains(&STAGE_TOKEN) {
            let late: Vec<ClientId> = st.pendings[st.active].iter().copied().collect();
            for id in late {
                let chunk = st.active as u16;
                st.remove_everywhere(id);
                drop_peer(
                    peers,
                    id,
                    stage_name,
                    Some(chunk),
                    DropKind::DeadlineMissed,
                    dropouts,
                );
            }
            reactor.arm_deadline(STAGE_TOKEN, Instant::now() + cfg.stage_timeout);
        }
    }
    reactor.cancel_deadline(STAGE_TOKEN);
    Ok(st.uplink())
}

/// Drains every currently available frame from `id`'s channel into the
/// chunk state, detecting stream death (disconnect / abort / garbage).
fn drain_chunk_frames(
    st: &mut ChunkCollect,
    peers: &mut Peers,
    id: ClientId,
    round: u64,
    m: usize,
    stage_name: &'static str,
    dropouts: &mut Vec<DetectedDropout>,
) {
    loop {
        let Some(chan) = peers.get_mut(&id) else {
            return;
        };
        match chan.try_recv() {
            Ok(Some(frame)) => {
                if !st.file_frame(peers, id, &frame, round, m, dropouts) {
                    return;
                }
            }
            Ok(None) => return,
            Err(_) => {
                let chunk = st.died_at(id);
                st.remove_everywhere(id);
                drop_peer(
                    peers,
                    id,
                    stage_name,
                    Some(chunk),
                    DropKind::Disconnected,
                    dropouts,
                );
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Round-global stage collection.
// ---------------------------------------------------------------------

/// Collects exactly one body per expected client for `want`, until the
/// per-stage deadline. Silent or disconnected clients become detected
/// dropouts and are removed from `peers`. `idle` runs once per loop
/// turn so pending per-chunk work (unmasking) overlaps the wait.
///
/// # Errors
///
/// Only `idle` failures (protocol aborts) — per-client failures are
/// dropouts, not errors.
#[allow(clippy::too_many_arguments)]
fn collect_stage(
    engine: Option<&mut Reactor>,
    peers: &mut Peers,
    expected: &[ClientId],
    want: StageTag,
    round: u64,
    cfg: &CoordinatorConfig,
    stage_name: &'static str,
    dropouts: &mut Vec<DetectedDropout>,
    up: &mut Traffic,
    server: &mut Server,
    idle: &mut IdleWork<'_>,
) -> Result<BTreeMap<ClientId, Vec<u8>>, NetError> {
    match engine {
        Some(reactor) => collect_stage_reactor(
            reactor, peers, expected, want, round, cfg, stage_name, dropouts, up, server, idle,
        ),
        None => collect_stage_sweep(
            peers, expected, want, round, cfg, stage_name, dropouts, up, server, idle,
        ),
    }
}

/// Files one round-global stage frame; returns `false` if the client
/// was dropped.
#[allow(clippy::too_many_arguments)]
fn file_stage_frame(
    peers: &mut Peers,
    pending: &mut BTreeSet<ClientId>,
    bodies: &mut BTreeMap<ClientId, Vec<u8>>,
    id: ClientId,
    frame: &[u8],
    want: StageTag,
    round: u64,
    stage_name: &'static str,
    dropouts: &mut Vec<DetectedDropout>,
    up: &mut Traffic,
) -> bool {
    up.add(frame.len() as u64);
    match Envelope::decode(frame) {
        Ok(env) if env.stage == want && env.round == round && pending.contains(&id) => {
            bodies.insert(id, env.body);
            pending.remove(&id);
            true
        }
        Ok(env) if env.stage == StageTag::Abort => {
            pending.remove(&id);
            drop_peer(peers, id, stage_name, None, DropKind::Aborted, dropouts);
            false
        }
        _ => {
            pending.remove(&id);
            drop_peer(
                peers,
                id,
                stage_name,
                None,
                DropKind::ProtocolViolation,
                dropouts,
            );
            false
        }
    }
}

/// Blocking-sweep engine for [`collect_stage`].
#[allow(clippy::too_many_arguments)]
fn collect_stage_sweep(
    peers: &mut Peers,
    expected: &[ClientId],
    want: StageTag,
    round: u64,
    cfg: &CoordinatorConfig,
    stage_name: &'static str,
    dropouts: &mut Vec<DetectedDropout>,
    up: &mut Traffic,
    server: &mut Server,
    idle: &mut IdleWork<'_>,
) -> Result<BTreeMap<ClientId, Vec<u8>>, NetError> {
    let mut deadline = Instant::now() + cfg.stage_timeout;
    let mut pending: BTreeSet<ClientId> = expected
        .iter()
        .copied()
        .filter(|id| peers.contains_key(id))
        .collect();
    let mut bodies: BTreeMap<ClientId, Vec<u8>> = BTreeMap::new();
    while !pending.is_empty() && Instant::now() < deadline {
        // Interleaved background work (per-chunk unmasking, possibly
        // with injected compute) must not eat the peers' response
        // window: credit its wall time back to the stage deadline.
        let idle_start = Instant::now();
        idle(server).map_err(NetError::SecAgg)?;
        deadline += idle_start.elapsed();
        let ids: Vec<ClientId> = pending.iter().copied().collect();
        for id in ids {
            let Some(chan) = peers.get_mut(&id) else {
                pending.remove(&id);
                continue;
            };
            let slice = (Instant::now() + cfg.tick).min(deadline);
            match chan.recv_deadline(slice) {
                Ok(frame) => {
                    file_stage_frame(
                        peers,
                        &mut pending,
                        &mut bodies,
                        id,
                        &frame,
                        want,
                        round,
                        stage_name,
                        dropouts,
                        up,
                    );
                }
                Err(NetError::Timeout) => {}
                Err(_) => {
                    pending.remove(&id);
                    drop_peer(
                        peers,
                        id,
                        stage_name,
                        None,
                        DropKind::Disconnected,
                        dropouts,
                    );
                }
            }
        }
    }
    for id in pending {
        drop_peer(
            peers,
            id,
            stage_name,
            None,
            DropKind::DeadlineMissed,
            dropouts,
        );
    }
    Ok(bodies)
}

/// Reactor engine for [`collect_stage`]: the thread sleeps in the
/// poller until frames, disconnects, or the stage deadline are ready.
/// Idle work runs between polls (non-blocking polls while it reports
/// more work, so collection stays responsive during long interleaves).
#[allow(clippy::too_many_arguments)]
fn collect_stage_reactor(
    reactor: &mut Reactor,
    peers: &mut Peers,
    expected: &[ClientId],
    want: StageTag,
    round: u64,
    cfg: &CoordinatorConfig,
    stage_name: &'static str,
    dropouts: &mut Vec<DetectedDropout>,
    up: &mut Traffic,
    server: &mut Server,
    idle: &mut IdleWork<'_>,
) -> Result<BTreeMap<ClientId, Vec<u8>>, NetError> {
    let mut deadline = Instant::now() + cfg.stage_timeout;
    let mut pending: BTreeSet<ClientId> = expected
        .iter()
        .copied()
        .filter(|id| peers.contains_key(id))
        .collect();
    let mut bodies: BTreeMap<ClientId, Vec<u8>> = BTreeMap::new();
    reactor.arm_deadline(STAGE_TOKEN, deadline);

    // Initial sweep: responses may already be buffered, and their
    // readiness may have been consumed by an earlier poll (e.g. during
    // a broadcast flush).
    let ids: Vec<ClientId> = pending.iter().copied().collect();
    for id in ids {
        drain_stage_frames(
            peers,
            &mut pending,
            &mut bodies,
            id,
            want,
            round,
            stage_name,
            dropouts,
            up,
        );
    }

    let (mut events, mut expired) = (Vec::new(), Vec::new());
    'collect: while !pending.is_empty() {
        // Interleaved background work must not eat the peers' response
        // window: credit its wall time back to the stage deadline.
        let idle_start = Instant::now();
        let did_work = idle(server).map_err(NetError::SecAgg)?;
        let spent = idle_start.elapsed();
        if !spent.is_zero() {
            deadline += spent;
            reactor.arm_deadline(STAGE_TOKEN, deadline);
        }
        // With idle work in flight, poll without blocking and come
        // straight back; otherwise sleep until an event or the deadline.
        let wait = if did_work {
            Duration::ZERO
        } else {
            cfg.stage_timeout
        };
        reactor.poll(&mut events, &mut expired, wait)?;
        for ev in &events {
            handle_write_event(peers, ev, stage_name, dropouts);
            let Some(id) = client_of(ev.token) else {
                continue;
            };
            if !(ev.readable || ev.closed) || !peers.contains_key(&id) {
                continue;
            }
            drain_stage_frames(
                peers,
                &mut pending,
                &mut bodies,
                id,
                want,
                round,
                stage_name,
                dropouts,
                up,
            );
        }
        // A write-event failure (or any other path) may have dropped a
        // peer without touching `pending` — retain, so the stage can
        // complete and the leftover loop below can't double-record.
        pending.retain(|id| peers.contains_key(id));
        if expired.contains(&STAGE_TOKEN) {
            break 'collect;
        }
    }
    reactor.cancel_deadline(STAGE_TOKEN);
    for id in pending {
        if peers.contains_key(&id) {
            drop_peer(
                peers,
                id,
                stage_name,
                None,
                DropKind::DeadlineMissed,
                dropouts,
            );
        }
    }
    Ok(bodies)
}

/// Drains every currently available frame from `id` during a
/// round-global stage. A frame for a client that already answered (and
/// is not an abort) is out-of-protocol, exactly as the sweep would
/// conclude when it met the frame at the next stage.
#[allow(clippy::too_many_arguments)]
fn drain_stage_frames(
    peers: &mut Peers,
    pending: &mut BTreeSet<ClientId>,
    bodies: &mut BTreeMap<ClientId, Vec<u8>>,
    id: ClientId,
    want: StageTag,
    round: u64,
    stage_name: &'static str,
    dropouts: &mut Vec<DetectedDropout>,
    up: &mut Traffic,
) {
    loop {
        let Some(chan) = peers.get_mut(&id) else {
            return;
        };
        match chan.try_recv() {
            Ok(Some(frame)) => {
                if !file_stage_frame(
                    peers, pending, bodies, id, &frame, want, round, stage_name, dropouts, up,
                ) {
                    return;
                }
            }
            Ok(None) => return,
            Err(_) => {
                if pending.remove(&id) {
                    drop_peer(
                        peers,
                        id,
                        stage_name,
                        None,
                        DropKind::Disconnected,
                        dropouts,
                    );
                } else {
                    // Already answered this stage; the disconnect will
                    // be observed when it next matters, as in the sweep.
                }
                return;
            }
        }
    }
}

/// Flushes a backlogged write surfaced by a write-readiness event.
fn handle_write_event(
    peers: &mut Peers,
    ev: &Event,
    stage_name: &'static str,
    dropouts: &mut Vec<DetectedDropout>,
) {
    if !ev.writable {
        return;
    }
    let Some(id) = client_of(ev.token) else {
        return;
    };
    if let Some(chan) = peers.get_mut(&id) {
        if chan.try_flush().is_err() {
            drop_peer(
                peers,
                id,
                stage_name,
                None,
                DropKind::Disconnected,
                dropouts,
            );
        }
    }
}

/// Removes a peer and records the detection.
fn drop_peer(
    peers: &mut Peers,
    id: ClientId,
    stage: &'static str,
    chunk: Option<u16>,
    kind: DropKind,
    dropouts: &mut Vec<DetectedDropout>,
) {
    peers.remove(&id);
    dropouts.push(DetectedDropout {
        client: id,
        stage,
        chunk,
        kind,
    });
}

/// Broadcasts an envelope to every live peer; send failures become
/// detected dropouts (a write timeout is a deadline miss, anything else
/// a disconnect). On the reactor engine `send` only queues — callers
/// follow up with [`flush_sends`]. Returns downlink traffic.
fn broadcast(
    peers: &mut Peers,
    env: &Envelope,
    dropouts: &mut Vec<DetectedDropout>,
    stage: &'static str,
) -> Traffic {
    let frame = env.encode();
    let mut down = Traffic::default();
    let ids: Vec<ClientId> = peers.keys().copied().collect();
    for id in ids {
        if let Some(chan) = peers.get_mut(&id) {
            match chan.send(&frame) {
                Ok(()) => down.add(frame.len() as u64),
                Err(e) => drop_peer(peers, id, stage, None, send_failure_kind(&e), dropouts),
            }
        }
    }
    down
}

/// Sends to one peer; failure becomes a detected dropout.
fn send_or_drop(
    peers: &mut Peers,
    id: ClientId,
    env: &Envelope,
    stage: &'static str,
    dropouts: &mut Vec<DetectedDropout>,
) {
    if let Some(chan) = peers.get_mut(&id) {
        if let Err(e) = send_env(chan.as_mut(), env) {
            drop_peer(peers, id, stage, None, send_failure_kind(&e), dropouts);
        }
    }
}

/// A send that timed out hit a stalled-but-connected peer (deadline
/// miss); any other failure is a disconnect.
fn send_failure_kind(e: &NetError) -> DropKind {
    match e {
        NetError::Timeout => DropKind::DeadlineMissed,
        _ => DropKind::Disconnected,
    }
}

/// Reactor engine only: drives write readiness until every queued
/// broadcast frame has drained (peers that cannot absorb theirs within
/// the stage timeout become detected dropouts). No-op on the sweep
/// engine, whose sends are blocking.
fn flush_sends(
    engine: Option<&mut Reactor>,
    peers: &mut Peers,
    dropouts: &mut Vec<DetectedDropout>,
    stage: &'static str,
    cfg: &CoordinatorConfig,
) {
    let Some(reactor) = engine else { return };
    let deadline = Instant::now() + cfg.stage_timeout;
    let (mut events, mut expired) = (Vec::new(), Vec::new());
    loop {
        let backlogged: Vec<ClientId> = peers
            .iter()
            .filter(|(_, c)| c.wants_write())
            .map(|(&id, _)| id)
            .collect();
        if backlogged.is_empty() {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            for id in backlogged {
                drop_peer(peers, id, stage, None, DropKind::DeadlineMissed, dropouts);
            }
            return;
        }
        if reactor
            .poll(&mut events, &mut expired, deadline - now)
            .is_err()
        {
            // The poller itself failed: readiness can no longer drive
            // these drains, so the undelivered peers must be recorded
            // as dropouts — silently returning would let them be
            // misattributed (or lost) at the next stage.
            for id in backlogged {
                drop_peer(peers, id, stage, None, DropKind::Disconnected, dropouts);
            }
            return;
        }
        for ev in &events {
            handle_write_event(peers, ev, stage, dropouts);
        }
    }
}

/// Best-effort abort notification to everyone still connected.
fn abort_all(peers: &mut Peers, round: u64, err: &SecAggError) {
    let env = Envelope::new(
        StageTag::Abort,
        round,
        codec::encode_abort(&err.to_string()),
    );
    let frame = env.encode();
    for chan in peers.values_mut() {
        let _ = chan.send(&frame);
        let _ = chan.try_flush();
    }
}

fn push_stage(stats: &mut RoundStats, name: &'static str, up: &Traffic, down: Traffic) {
    stats.stages.push(StageTraffic {
        stage: name,
        uplink_total: up.total,
        uplink_max: up.max,
        downlink_total: down.total,
        downlink_max: down.max,
    });
}
