//! The reactor's memory plane: a shared, size-classed, byte-accounted
//! frame pool ([`BytePool`]) plus the cheap per-connection accounting
//! handles ([`ChannelAccount`]) every registered channel charges its
//! buffered bytes through.
//!
//! Before this module, each connection owned a private recycle pool of
//! at most 8 frames and nothing bounded the *total* bytes a reactor
//! could buffer: a burst of early masked-input frames from 1k clients
//! multiplied the round's vector size by the cohort and ballooned the
//! process. Now one pool per reactor is both
//!
//! 1. the **allocation reservoir**: recycled frame `Vec`s land in
//!    size-classed free lists shared by every connection, so a drain
//!    burst on one channel reuses the allocations another channel just
//!    released (bounded by [`BytePool::retain_cap`]); and
//! 2. the **byte ledger**: every buffered ingress byte (stream buffer +
//!    decoded frames in flight) and egress byte (write backlog) is
//!    charged to the owning connection's [`ChannelAccount`] and credited
//!    back when consumed, recycled, or the channel drops — so
//!    `charges − credits` is exactly the reactor's live buffered bytes.
//!
//! Backpressure keys off the ledger: with a non-zero budget
//! (`CoordinatorConfig::ingress_budget`), a connection whose ingress
//! charge crosses its fair share — or any charged connection while the
//! reactor is past its global budget — reports
//! [`ChannelAccount::should_pause`], and the owning channel drops its
//! read [`Interest`](crate::reactor::Interest) so TCP flow control
//! pushes back on the peer. Credits re-arm it below the low-water mark
//! ([`ChannelAccount::should_resume`]). Budget `0` disables pausing but
//! keeps the ledger running, so the unlimited path stays the bit-equal
//! reference while the gauges still tell the truth.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dordis_telemetry::{Counter, Gauge, Telemetry};

/// Free-list size classes (by `Vec` capacity). A recycled buffer joins
/// the largest class whose size its capacity covers; a `get` scans from
/// the smallest class that guarantees the requested capacity upward.
const CLASS_SIZES: [usize; 7] = [
    256,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
];

/// Retained free-list bytes never exceed this when no budget is set
/// (with a budget, the cap is the budget itself — the reservoir should
/// never hold more than the reactor is allowed to buffer).
const DEFAULT_RETAIN_CAP: u64 = 8 * 1024 * 1024;

/// A connection's fair share never drops below this, however many
/// connections share the budget — one socket read's worth of headroom,
/// so control-plane stage messages always get through while a paused
/// connection still parks at a frame boundary. (A higher floor defeats
/// tight budgets at large cohorts: `floor × connections` becomes the
/// real memory ceiling.)
pub const MIN_FAIR_SHARE: u64 = 16 * 1024;

/// Size-classed recycled allocations, cleared and ready for reuse.
#[derive(Debug, Default)]
struct FreeList {
    classes: [Vec<Vec<u8>>; CLASS_SIZES.len()],
    /// Sum of retained capacities across all classes.
    bytes: u64,
}

/// Shared state behind every [`BytePool`] clone and every
/// [`ChannelAccount`] on the reactor.
#[derive(Debug)]
struct PoolShared {
    /// Ingress byte budget; `0` means unlimited (accounting only).
    budget: AtomicU64,
    /// Live buffered ingress bytes (stream buffers + decoded frames).
    live_in: AtomicU64,
    /// Live buffered egress bytes (write backlogs).
    live_out: AtomicU64,
    /// High-water marks of the two ledgers.
    hw_in: AtomicU64,
    hw_out: AtomicU64,
    /// Open accounts (≈ registered connections) — the fair-share divisor.
    conns: AtomicU64,
    /// Accounts currently read-paused by backpressure.
    paused: AtomicU64,
    free: Mutex<FreeList>,
    // Registry cells (no-op when telemetry is disabled).
    g_live_in: Gauge,
    g_live_out: Gauge,
    g_hw_in: Gauge,
    g_hw_out: Gauge,
    g_paused: Gauge,
    c_hits: Counter,
    c_misses: Counter,
    c_pauses: Counter,
}

/// Cheap (`Arc`) handle to a reactor's shared frame pool and byte
/// ledger. Cloning shares the same pool.
#[derive(Clone, Debug)]
pub struct BytePool {
    shared: Arc<PoolShared>,
}

impl BytePool {
    /// A pool with `budget` ingress bytes (`0` = unlimited) and no
    /// telemetry.
    #[must_use]
    pub fn new(budget: u64) -> BytePool {
        BytePool::with_telemetry(budget, &Telemetry::disabled())
    }

    /// A pool whose gauges and counters record into `telemetry`.
    #[must_use]
    pub fn with_telemetry(budget: u64, telemetry: &Telemetry) -> BytePool {
        BytePool {
            shared: Arc::new(PoolShared {
                budget: AtomicU64::new(budget),
                live_in: AtomicU64::new(0),
                live_out: AtomicU64::new(0),
                hw_in: AtomicU64::new(0),
                hw_out: AtomicU64::new(0),
                conns: AtomicU64::new(0),
                paused: AtomicU64::new(0),
                free: Mutex::new(FreeList::default()),
                g_live_in: telemetry.gauge("dordis_buffered_bytes", &[("direction", "in")]),
                g_live_out: telemetry.gauge("dordis_buffered_bytes", &[("direction", "out")]),
                g_hw_in: telemetry
                    .gauge("dordis_buffered_bytes_high_water", &[("direction", "in")]),
                g_hw_out: telemetry
                    .gauge("dordis_buffered_bytes_high_water", &[("direction", "out")]),
                g_paused: telemetry.gauge("dordis_paused_connections", &[]),
                c_hits: telemetry.counter("dordis_frames_recycled_total", &[]),
                c_misses: telemetry.counter("dordis_frames_allocated_total", &[]),
                c_pauses: telemetry.counter("dordis_ingress_pauses_total", &[]),
            }),
        }
    }

    /// Replaces the ingress budget (`0` = unlimited). Existing accounts
    /// observe the new value on their next charge/credit.
    pub fn set_budget(&self, budget: u64) {
        self.shared.budget.store(budget, Ordering::Relaxed);
    }

    /// The ingress budget (`0` = unlimited).
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.shared.budget.load(Ordering::Relaxed)
    }

    /// True when both handles point at the same shared reservoir —
    /// used at re-registration to detect a channel crossing reactors.
    #[must_use]
    pub fn same_as(&self, other: &BytePool) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// Opens a per-connection accounting handle.
    #[must_use]
    pub fn account(&self) -> ChannelAccount {
        self.shared.conns.fetch_add(1, Ordering::Relaxed);
        ChannelAccount {
            inner: Arc::new(AccountInner {
                pool: self.clone(),
                charged_in: AtomicU64::new(0),
                charged_out: AtomicU64::new(0),
                paused: AtomicBool::new(false),
            }),
        }
    }

    /// Pops a cleared buffer of capacity ≥ `min` from the reservoir, or
    /// allocates fresh (counted as a miss).
    #[must_use]
    pub fn get(&self, min: usize) -> Vec<u8> {
        let start = CLASS_SIZES.iter().position(|&s| s >= min);
        if let Some(start) = start {
            if let Ok(mut free) = self.shared.free.lock() {
                for class in &mut free.classes[start..] {
                    if let Some(buf) = class.pop() {
                        let cap = buf.capacity() as u64;
                        free.bytes = free.bytes.saturating_sub(cap);
                        self.shared.c_hits.inc();
                        return buf;
                    }
                }
            }
        }
        self.shared.c_misses.inc();
        Vec::with_capacity(min.max(CLASS_SIZES[0]))
    }

    /// Returns a buffer to the reservoir (cleared). Buffers that would
    /// push retained bytes past [`retain_cap`](BytePool::retain_cap),
    /// or are too small to classify, are dropped.
    pub fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        let cap = buf.capacity();
        let Some(class) = CLASS_SIZES
            .iter()
            .rposition(|&s| s <= cap)
            .filter(|_| cap >= CLASS_SIZES[0])
        else {
            return;
        };
        let cap = cap as u64;
        let retain = self.retain_cap();
        if let Ok(mut free) = self.shared.free.lock() {
            if free.bytes + cap <= retain {
                free.bytes += cap;
                free.classes[class].push(buf);
            }
        }
    }

    /// Bound on retained free-list bytes: the budget when one is set,
    /// otherwise a fixed default.
    #[must_use]
    pub fn retain_cap(&self) -> u64 {
        match self.budget() {
            0 => DEFAULT_RETAIN_CAP,
            b => b.max(MIN_FAIR_SHARE),
        }
    }

    /// Bytes currently retained in the free lists.
    #[must_use]
    pub fn pooled_bytes(&self) -> u64 {
        self.shared.free.lock().map_or(0, |f| f.bytes)
    }

    /// Live buffered ingress bytes (charges − credits).
    #[must_use]
    pub fn live_ingress(&self) -> u64 {
        self.shared.live_in.load(Ordering::Relaxed)
    }

    /// Live buffered egress bytes.
    #[must_use]
    pub fn live_egress(&self) -> u64 {
        self.shared.live_out.load(Ordering::Relaxed)
    }

    /// Ingress high-water mark.
    #[must_use]
    pub fn high_water_ingress(&self) -> u64 {
        self.shared.hw_in.load(Ordering::Relaxed)
    }

    /// Open accounts (≈ registered connections).
    #[must_use]
    pub fn connections(&self) -> u64 {
        self.shared.conns.load(Ordering::Relaxed)
    }

    /// Connections currently read-paused by backpressure.
    #[must_use]
    pub fn paused_connections(&self) -> u64 {
        self.shared.paused.load(Ordering::Relaxed)
    }

    fn charge(&self, ledger: Ledger, n: u64) {
        if n == 0 {
            return;
        }
        let s = &self.shared;
        let (live, hw, g_live, g_hw) = match ledger {
            Ledger::In => (&s.live_in, &s.hw_in, &s.g_live_in, &s.g_hw_in),
            Ledger::Out => (&s.live_out, &s.hw_out, &s.g_live_out, &s.g_hw_out),
        };
        let now = live.fetch_add(n, Ordering::Relaxed) + n;
        g_live.set(now);
        let mut seen = hw.load(Ordering::Relaxed);
        while now > seen {
            match hw.compare_exchange_weak(seen, now, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    g_hw.set(now);
                    break;
                }
                Err(cur) => seen = cur,
            }
        }
    }

    fn credit(&self, ledger: Ledger, n: u64) {
        if n == 0 {
            return;
        }
        let s = &self.shared;
        let (live, g_live) = match ledger {
            Ledger::In => (&s.live_in, &s.g_live_in),
            Ledger::Out => (&s.live_out, &s.g_live_out),
        };
        let prev = live.fetch_sub(n, Ordering::Relaxed);
        debug_assert!(prev >= n, "pool credit {n} exceeds live {prev}");
        g_live.set(prev.saturating_sub(n));
    }
}

#[derive(Clone, Copy)]
enum Ledger {
    In,
    Out,
}

/// Per-connection accounting state (shared between a channel and its
/// buffers; the last clone's drop settles the ledger).
#[derive(Debug)]
struct AccountInner {
    pool: BytePool,
    charged_in: AtomicU64,
    charged_out: AtomicU64,
    paused: AtomicBool,
}

impl Drop for AccountInner {
    fn drop(&mut self) {
        // No leak on channel drop: whatever this connection still has
        // charged (unconsumed stream bytes, un-recycled decoded frames,
        // backlogged writes) is credited back, and a paused connection
        // stops counting as paused.
        self.pool
            .credit(Ledger::In, self.charged_in.load(Ordering::Relaxed));
        self.pool
            .credit(Ledger::Out, self.charged_out.load(Ordering::Relaxed));
        if self.paused.swap(false, Ordering::Relaxed) {
            let s = &self.pool.shared;
            let prev = s.paused.fetch_sub(1, Ordering::Relaxed);
            s.g_paused.set(prev.saturating_sub(1));
        }
        self.pool.shared.conns.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One connection's handle into the reactor's [`BytePool`]: charge and
/// credit buffered bytes, draw/return frame allocations, and consult
/// the backpressure thresholds. Clones share the same account (a
/// channel and its frame buffer hold one each).
#[derive(Clone, Debug)]
pub struct ChannelAccount {
    inner: Arc<AccountInner>,
}

impl ChannelAccount {
    /// The pool this account charges into.
    #[must_use]
    pub fn pool(&self) -> &BytePool {
        &self.inner.pool
    }

    /// Charges `n` buffered ingress bytes to this connection.
    pub fn charge_ingress(&self, n: usize) {
        self.inner.charged_in.fetch_add(n as u64, Ordering::Relaxed);
        self.inner.pool.charge(Ledger::In, n as u64);
    }

    /// Credits `n` ingress bytes back (saturating: crediting more than
    /// was charged settles at zero, so a stray recycle cannot corrupt
    /// the global ledger).
    pub fn credit_ingress(&self, n: usize) {
        let actual = saturating_take(&self.inner.charged_in, n as u64);
        self.inner.pool.credit(Ledger::In, actual);
    }

    /// Charges `n` backlogged egress bytes.
    pub fn charge_egress(&self, n: usize) {
        self.inner
            .charged_out
            .fetch_add(n as u64, Ordering::Relaxed);
        self.inner.pool.charge(Ledger::Out, n as u64);
    }

    /// Credits `n` egress bytes back (saturating).
    pub fn credit_egress(&self, n: usize) {
        let actual = saturating_take(&self.inner.charged_out, n as u64);
        self.inner.pool.credit(Ledger::Out, actual);
    }

    /// This connection's live ingress charge.
    #[must_use]
    pub fn charged_ingress(&self) -> u64 {
        self.inner.charged_in.load(Ordering::Relaxed)
    }

    /// This connection's live egress charge.
    #[must_use]
    pub fn charged_egress(&self) -> u64 {
        self.inner.charged_out.load(Ordering::Relaxed)
    }

    /// This connection's ingress byte allowance: an equal split of the
    /// budget across open accounts, floored at [`MIN_FAIR_SHARE`].
    #[must_use]
    pub fn fair_share(&self) -> u64 {
        let budget = self.inner.pool.budget();
        if budget == 0 {
            return u64::MAX;
        }
        let conns = self.inner.pool.connections().max(1);
        (budget / conns).max(MIN_FAIR_SHARE)
    }

    /// True when backpressure should drop this connection's read
    /// interest: its own charge crossed its fair share, or the reactor
    /// is past its global budget and this connection is carrying a
    /// meaningful part of it. Always false with budget `0`.
    #[must_use]
    pub fn should_pause(&self) -> bool {
        let pool = &self.inner.pool;
        let budget = pool.budget();
        if budget == 0 {
            return false;
        }
        let share = self.fair_share();
        let own = self.charged_ingress();
        own > share || (pool.live_ingress() > budget && own > share / 2)
    }

    /// True when a paused connection has drained below the low-water
    /// mark (a quarter of its fair share) and should re-arm its read
    /// interest.
    ///
    /// Deliberately a **local** condition: a resume check only fires
    /// when one of *this* connection's frames is recycled, so a global
    /// "pool back under budget" clause would strand any connection
    /// whose own custody drained to zero while the pool was still over
    /// budget — nothing would ever re-check it. The global budget
    /// instead acts on the pause side ([`Self::should_pause`]'s second
    /// clause tightens every connection's allowance to half its share
    /// while the pool is over), and the quarter-share low-water mark
    /// gives that clause hysteresis.
    #[must_use]
    pub fn should_resume(&self) -> bool {
        if self.inner.pool.budget() == 0 {
            return true;
        }
        self.charged_ingress() <= self.fair_share() / 4
    }

    /// Records this connection's pause state (idempotent); keeps the
    /// pool's paused-connection gauge and pause counter in sync.
    pub fn set_paused(&self, paused: bool) {
        if self.inner.paused.swap(paused, Ordering::Relaxed) == paused {
            return;
        }
        let s = &self.inner.pool.shared;
        if paused {
            let now = s.paused.fetch_add(1, Ordering::Relaxed) + 1;
            s.g_paused.set(now);
            s.c_pauses.inc();
        } else {
            let prev = s.paused.fetch_sub(1, Ordering::Relaxed);
            s.g_paused.set(prev.saturating_sub(1));
        }
    }

    /// Pops a cleared buffer of capacity ≥ `min` from the shared
    /// reservoir (see [`BytePool::get`]).
    #[must_use]
    pub fn get(&self, min: usize) -> Vec<u8> {
        self.inner.pool.get(min)
    }

    /// Returns a buffer to the shared reservoir (see [`BytePool::put`]).
    pub fn put(&self, buf: Vec<u8>) {
        self.inner.pool.put(buf);
    }
}

/// Subtracts up to `n` from `cell`, returning how much was actually
/// subtracted (never underflows).
fn saturating_take(cell: &AtomicU64, n: u64) -> u64 {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let take = cur.min(n);
        match cell.compare_exchange_weak(cur, cur - take, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return take,
            Err(now) => cur = now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_balances_and_tracks_high_water() {
        let pool = BytePool::new(0);
        let a = pool.account();
        let b = pool.account();
        a.charge_ingress(100);
        b.charge_ingress(50);
        assert_eq!(pool.live_ingress(), 150);
        assert_eq!(pool.high_water_ingress(), 150);
        a.credit_ingress(100);
        assert_eq!(pool.live_ingress(), 50);
        assert_eq!(pool.high_water_ingress(), 150, "high water is sticky");
        drop(b);
        assert_eq!(pool.live_ingress(), 0, "drop settles the ledger");
        assert_eq!(pool.connections(), 1);
    }

    #[test]
    fn credit_saturates_instead_of_underflowing() {
        let pool = BytePool::new(0);
        let a = pool.account();
        a.charge_ingress(10);
        a.credit_ingress(1000);
        assert_eq!(pool.live_ingress(), 0);
        assert_eq!(a.charged_ingress(), 0);
    }

    #[test]
    fn reservoir_reuses_and_respects_retain_cap() {
        let pool = BytePool::new(0);
        pool.put(Vec::with_capacity(4096));
        assert_eq!(pool.pooled_bytes(), 4096);
        let buf = pool.get(1000);
        assert!(buf.capacity() >= 4096, "reused the pooled allocation");
        assert_eq!(pool.pooled_bytes(), 0);
        // A too-big buffer for the remaining cap is dropped, not pooled.
        let tiny = BytePool::new(1024);
        assert_eq!(tiny.retain_cap(), MIN_FAIR_SHARE);
        tiny.put(Vec::with_capacity(2 * MIN_FAIR_SHARE as usize));
        assert_eq!(tiny.pooled_bytes(), 0);
    }

    #[test]
    fn get_never_returns_undersized_buffers() {
        let pool = BytePool::new(0);
        pool.put(Vec::with_capacity(512));
        let buf = pool.get(100_000);
        assert!(buf.capacity() >= 100_000);
        // The small pooled buffer is still there for a small request.
        assert_eq!(pool.pooled_bytes(), 512);
        assert!(pool.get(256).capacity() >= 256);
        assert_eq!(pool.pooled_bytes(), 0);
    }

    #[test]
    fn pause_thresholds_follow_budget_and_fair_share() {
        let pool = BytePool::new(1 << 20);
        let a = pool.account();
        let _b = pool.account();
        // share = max(1MiB / 2, MIN_FAIR_SHARE) = 512 KiB.
        assert_eq!(a.fair_share(), 512 * 1024);
        assert!(!a.should_pause());
        a.charge_ingress(512 * 1024 + 1);
        assert!(a.should_pause());
        assert!(!a.should_resume());
        a.credit_ingress(512 * 1024 + 1 - 200 * 1024);
        assert!(
            !a.should_resume(),
            "200 KiB is still above the quarter-share low-water mark"
        );
        a.credit_ingress(100 * 1024);
        assert!(a.should_resume(), "below a quarter of the share");
        // Budget 0: never pause, always resume.
        pool.set_budget(0);
        a.charge_ingress(10 << 20);
        assert!(!a.should_pause());
        assert!(a.should_resume());
    }

    #[test]
    fn paused_gauge_is_idempotent_and_settles_on_drop() {
        let pool = BytePool::new(1);
        let a = pool.account();
        a.set_paused(true);
        a.set_paused(true);
        assert_eq!(pool.paused_connections(), 1);
        let a2 = a.clone();
        drop(a);
        assert_eq!(pool.paused_connections(), 1, "clone keeps the account");
        drop(a2);
        assert_eq!(pool.paused_connections(), 0);
    }
}
