//! dordis-reactor: a readiness-driven event loop so one coordinator
//! thread serves hundreds of chunk-streaming clients.
//!
//! The pre-reactor coordinator swept its blocking [`Channel`]s
//! round-robin in fixed `recv_deadline` slices, so both per-round
//! latency and syscall count scaled as `O(clients × ticks)`. This module
//! replaces the sweep with a small mio-style reactor:
//!
//! - [`Poller`]: an epoll instance driven through direct `syscall`
//!   instructions (the container has no crates.io access, so no `libc` /
//!   `mio` — the handful of syscalls we need are wrapped by hand in
//!   [`sys`]). Registrations are [`Token`]-keyed with read/write
//!   [`Interest`]; events are level-triggered, which composes with the
//!   drain-until-`WouldBlock` discipline of
//!   [`EventedChannel::try_recv`].
//! - [`TimerWheel`]: a coarse hashed wheel holding per-token deadlines
//!   at the coordinator's tick granularity
//!   (`CoordinatorConfig::tick`) — stage and per-chunk dropout
//!   deadlines cost O(1) to arm, cancel, and harvest.
//! - [`WakeQueue`]: a cross-thread waker (non-blocking pipe + ready-token
//!   queue) for channels whose readiness is not observable through a
//!   file descriptor. The in-memory loopback transport publishes its
//!   mpsc readiness through this: a sender pushes the receiver's token
//!   and writes one wake byte, and the reactor converts that into an
//!   ordinary readable [`Event`].
//! - [`EventedChannel`]: the readiness-driven side of a [`Channel`].
//!   Implementations reassemble frames across partial reads
//!   (`try_recv`) and buffer partial writes under backpressure
//!   (`try_flush`), so the event loop never blocks on one peer.
//!
//! The coordinator's per-(stage, chunk) state machine is unchanged — the
//! reactor only replaces *how* frames and deadlines are discovered, so
//! one thread now wakes `O(events)` times per round instead of
//! `O(clients × ticks)`.
//!
//! [`Channel`]: crate::transport::Channel
//! [`CoordinatorConfig::tick`]: crate::coordinator::CoordinatorConfig::tick

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dordis_telemetry::{Counter, Telemetry};

use crate::pool::BytePool;
use crate::transport::Channel;
use crate::NetError;

/// Direct-syscall wrappers for the five kernel facilities the reactor
/// needs: `epoll_create1`, `epoll_ctl`, `epoll_pwait`, `pipe2`, and
/// `read`/`write`/`close` on the wake pipe. No `libc` crate exists in
/// this container, so the syscalls are issued with inline `syscall` /
/// `svc` instructions; a negative return value is `-errno`.
#[allow(unsafe_code)]
mod sys {
    use std::io;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const READ: usize = 0;
        pub const WRITE: usize = 1;
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CREATE1: usize = 291;
        pub const PIPE2: usize = 293;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const READ: usize = 63;
        pub const WRITE: usize = 64;
        pub const CLOSE: usize = 57;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const EPOLL_CREATE1: usize = 20;
        pub const PIPE2: usize = 59;
    }

    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    compile_error!(
        "dordis-net's reactor issues raw Linux syscalls and currently \
         supports x86_64 and aarch64 only"
    );

    /// One raw syscall; returns the kernel's value (negative = -errno).
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
        ret
    }

    /// One raw syscall; returns the kernel's value (negative = -errno).
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc #0",
            in("x8") n,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    pub const EPOLL_CTL_ADD: usize = 1;
    pub const EPOLL_CTL_DEL: usize = 2;
    pub const EPOLL_CTL_MOD: usize = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: usize = 0o2000000;
    const O_NONBLOCK: usize = 0o4000;
    const O_CLOEXEC: usize = 0o2000000;

    /// The kernel's epoll event record. Packed on x86_64 (the kernel ABI
    /// there has no padding between `events` and `data`); naturally
    /// aligned elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub fn epoll_create1() -> io::Result<i32> {
        // SAFETY: epoll_create1 takes a flags word and touches no memory.
        let ret = unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
        check(ret).map(|fd| fd as i32)
    }

    pub fn epoll_ctl(epfd: i32, op: usize, fd: i32, event: Option<EpollEvent>) -> io::Result<()> {
        let mut ev = event.unwrap_or_default();
        let ptr = if event.is_some() {
            std::ptr::addr_of_mut!(ev) as usize
        } else {
            0
        };
        // SAFETY: `ev` outlives the call; the kernel reads it only
        // during the syscall.
        let ret = unsafe { syscall6(nr::EPOLL_CTL, epfd as usize, op, fd as usize, ptr, 0, 0) };
        check(ret).map(|_| ())
    }

    pub fn epoll_pwait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the events buffer is exclusively borrowed for the
        // duration of the call; a null sigmask leaves signals untouched.
        let ret = unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                epfd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0,
                8,
            )
        };
        check(ret)
    }

    /// A non-blocking, close-on-exec pipe: `(read_fd, write_fd)`.
    pub fn pipe2_nonblocking() -> io::Result<(i32, i32)> {
        let mut fds = [0i32; 2];
        // SAFETY: the kernel writes exactly two fds into `fds`.
        let ret = unsafe {
            syscall6(
                nr::PIPE2,
                fds.as_mut_ptr() as usize,
                O_NONBLOCK | O_CLOEXEC,
                0,
                0,
                0,
                0,
            )
        };
        check(ret).map(|_| (fds[0], fds[1]))
    }

    pub fn read(fd: i32, buf: &mut [u8]) -> io::Result<usize> {
        // SAFETY: the buffer is exclusively borrowed for the call.
        let ret = unsafe {
            syscall6(
                nr::READ,
                fd as usize,
                buf.as_mut_ptr() as usize,
                buf.len(),
                0,
                0,
                0,
            )
        };
        check(ret)
    }

    pub fn write(fd: i32, buf: &[u8]) -> io::Result<usize> {
        // SAFETY: the buffer is borrowed for the call.
        let ret = unsafe {
            syscall6(
                nr::WRITE,
                fd as usize,
                buf.as_ptr() as usize,
                buf.len(),
                0,
                0,
                0,
            )
        };
        check(ret)
    }

    pub fn close(fd: i32) {
        // SAFETY: we only close fds this module opened and owns.
        let _ = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
    }
}

/// Identifies one registration (a channel, a timer, or the waker) across
/// the reactor's APIs. The value travels through the kernel as epoll
/// userdata, so it must stay meaningful without any side table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Token(pub u64);

/// Which readiness a registration subscribes to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the peer has bytes (or a hangup) for us.
    pub readable: bool,
    /// Wake when the socket can accept more of a backlogged write.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle channel.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest — a channel with a backlogged outbox.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut b = 0;
        if self.readable {
            b |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.writable {
            b |= sys::EPOLLOUT;
        }
        b
    }
}

/// One readiness notification out of [`Reactor::poll`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The registration this event belongs to.
    pub token: Token,
    /// Bytes (or a pending hangup) are available to read.
    pub readable: bool,
    /// A backlogged write can make progress.
    pub writable: bool,
    /// The peer hung up or the socket errored; a following `try_recv`
    /// will drain any remaining buffered frames and then surface
    /// [`NetError::Closed`].
    pub closed: bool,
}

/// A copyable, non-owning handle to the epoll instance, so channels can
/// flip their own read/write interest (e.g. when an outbox transitions
/// between empty and backlogged) without borrowing the whole reactor.
#[derive(Clone, Copy, Debug)]
pub struct PollerHandle {
    epfd: i32,
}

impl PollerHandle {
    /// Adds `fd` with `interest` under `token`.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's `epoll_ctl` failure.
    pub fn register(&self, fd: i32, token: Token, interest: Interest) -> Result<(), NetError> {
        sys::epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            Some(sys::EpollEvent {
                events: interest.bits(),
                data: token.0,
            }),
        )
        .map_err(NetError::from)
    }

    /// Updates `fd`'s token and/or interest.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's `epoll_ctl` failure.
    pub fn reregister(&self, fd: i32, token: Token, interest: Interest) -> Result<(), NetError> {
        sys::epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd,
            Some(sys::EpollEvent {
                events: interest.bits(),
                data: token.0,
            }),
        )
        .map_err(NetError::from)
    }

    /// Removes `fd`. (Closing the fd also removes it implicitly.)
    ///
    /// # Errors
    ///
    /// Propagates the kernel's `epoll_ctl` failure.
    pub fn deregister(&self, fd: i32) -> Result<(), NetError> {
        sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, None).map_err(NetError::from)
    }
}

/// The epoll instance: owns the fd, hands out [`PollerHandle`]s, and
/// translates kernel events into [`Event`]s.
#[derive(Debug)]
pub struct Poller {
    handle: PollerHandle,
}

impl Poller {
    /// Creates a fresh epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure.
    pub fn new() -> Result<Poller, NetError> {
        let epfd = sys::epoll_create1()?;
        Ok(Poller {
            handle: PollerHandle { epfd },
        })
    }

    /// The non-owning handle channels use to manage their own interest.
    #[must_use]
    pub fn handle(&self) -> PollerHandle {
        self.handle
    }

    /// Blocks until at least one registration is ready or `timeout`
    /// passes, appending to `out`. `None` blocks indefinitely.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_pwait` failure (`EINTR` is retried).
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> Result<(), NetError> {
        let mut buf = [sys::EpollEvent::default(); 64];
        let ms = match timeout {
            None => -1,
            Some(d) => {
                // Ceil to a millisecond so timer deadlines are not
                // busy-waited across repeated 0 ms wakeups.
                let ns = d.as_nanos();
                ns.div_ceil(1_000_000).min(i32::MAX as u128) as i32
            }
        };
        let n = loop {
            match sys::epoll_pwait(self.handle.epfd, &mut buf, ms) {
                Ok(n) => break n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        };
        for ev in &buf[..n] {
            let raw = *ev;
            let bits = raw.events;
            out.push(Event {
                token: Token(raw.data),
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                closed: bits & (sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close(self.handle.epfd);
    }
}

// ---------------------------------------------------------------------
// Timer wheel.
// ---------------------------------------------------------------------

/// Wheel slot count. Deadlines further out than `SLOTS × tick` stay in
/// their slot across revolutions and are simply re-inspected when the
/// cursor comes around — correctness never depends on the horizon.
const WHEEL_SLOTS: usize = 512;

/// A hashed timer wheel at the coordinator's tick granularity: O(1)
/// arm/cancel/harvest for the per-(stage, chunk) dropout deadlines. One
/// deadline per token; re-arming replaces the previous one.
#[derive(Debug)]
pub struct TimerWheel {
    tick: Duration,
    start: Instant,
    /// `slots[abs_tick % WHEEL_SLOTS]` holds `(abs_tick, token)` entries.
    slots: Vec<Vec<(u64, Token)>>,
    /// Authoritative armed set: token → absolute tick. Wheel entries not
    /// matching this map are stale (cancelled or re-armed) and are
    /// dropped lazily during harvest.
    armed: BTreeMap<Token, u64>,
    /// Next tick the harvester has not yet visited.
    cursor: u64,
}

impl TimerWheel {
    /// A wheel with `tick` granularity starting now.
    #[must_use]
    pub fn new(tick: Duration) -> TimerWheel {
        TimerWheel {
            tick: tick.max(Duration::from_millis(1)),
            start: Instant::now(),
            slots: vec![Vec::new(); WHEEL_SLOTS],
            armed: BTreeMap::new(),
            cursor: 0,
        }
    }

    /// Absolute tick at which a deadline at `t` fires (never early).
    fn tick_of(&self, t: Instant) -> u64 {
        let ns = t.saturating_duration_since(self.start).as_nanos();
        ns.div_ceil(self.tick.as_nanos()).min(u64::MAX as u128) as u64
    }

    /// Arms (or re-arms) `token` to fire at `deadline`.
    pub fn schedule(&mut self, token: Token, deadline: Instant) {
        let abs = self.tick_of(deadline).max(self.cursor);
        self.armed.insert(token, abs);
        self.slots[(abs % WHEEL_SLOTS as u64) as usize].push((abs, token));
    }

    /// Disarms `token` (no-op if not armed).
    pub fn cancel(&mut self, token: Token) {
        self.armed.remove(&token);
    }

    /// The earliest armed deadline, as an `Instant`.
    #[must_use]
    pub fn next_deadline(&self) -> Option<Instant> {
        self.armed
            .values()
            .min()
            .map(|&abs| self.start + self.tick.saturating_mul(abs.min(u32::MAX as u64) as u32))
    }

    /// Harvests every deadline due at `now` into `expired`.
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<Token>) {
        let now_tick = now.saturating_duration_since(self.start).as_nanos() / self.tick.as_nanos();
        let now_tick = now_tick.min(u64::MAX as u128) as u64;
        // Visit at most one revolution: beyond that every slot has been
        // inspected once already.
        let last = now_tick.min(self.cursor + WHEEL_SLOTS as u64);
        while self.cursor <= last {
            let slot = &mut self.slots[(self.cursor % WHEEL_SLOTS as u64) as usize];
            let mut keep = Vec::new();
            for (abs, token) in slot.drain(..) {
                if self.armed.get(&token) != Some(&abs) {
                    continue; // stale: cancelled or re-armed
                }
                if abs <= now_tick {
                    self.armed.remove(&token);
                    expired.push(token);
                } else {
                    keep.push((abs, token));
                }
            }
            *slot = keep;
            if self.cursor == last {
                break;
            }
            self.cursor += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Waker.
// ---------------------------------------------------------------------

/// Cross-thread readiness injection for channels without a pollable fd
/// (the in-memory loopback). A sender pushes the receiver's token and
/// writes one byte into a non-blocking pipe whose read end the reactor
/// polls; a full pipe means a wake is already pending, so `EAGAIN` is
/// success.
#[derive(Debug)]
pub struct WakeQueue {
    write_fd: i32,
    ready: Mutex<Vec<Token>>,
}

impl WakeQueue {
    /// Marks `token` readable and wakes the reactor.
    pub fn wake(&self, token: Token) {
        if let Ok(mut q) = self.ready.lock() {
            q.push(token);
        }
        let _ = sys::write(self.write_fd, &[1u8]);
    }

    fn drain(&self, out: &mut Vec<Token>) {
        if let Ok(mut q) = self.ready.lock() {
            out.append(&mut q);
        }
    }
}

impl Drop for WakeQueue {
    fn drop(&mut self) {
        sys::close(self.write_fd);
    }
}

// ---------------------------------------------------------------------
// Reactor.
// ---------------------------------------------------------------------

/// The wake pipe's registration token (reserved; never surfaced).
const WAKE_TOKEN: Token = Token(u64::MAX);

/// The metrics scrape listener's registration token (reserved; its
/// events are consumed inside [`Reactor::poll`], never surfaced).
const METRICS_LISTENER_TOKEN: Token = Token(u64::MAX - 4);

/// Metrics scrape connections get tokens counted up from this base —
/// far above any client id (`JOIN_BASE` is `1 << 40`) and below the
/// reserved singletons at the very top of the space.
const METRICS_CONN_BASE: u64 = u64::MAX - (1 << 20);

/// Wake-up accounting, to prove the event loop does `O(events)` work:
/// the scale tests assert `polls` stays within a small factor of
/// `events + timer_fires`, where the old sweep did
/// `O(clients × ticks)` receive attempts.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReactorStats {
    /// `epoll_pwait` invocations (each is one coordinator wake-up).
    pub polls: u64,
    /// Readiness events delivered (fd events + loopback wakes).
    pub events: u64,
    /// Deadline timers fired.
    pub timer_fires: u64,
}

impl ReactorStats {
    /// Counters accumulated since `base` was captured (saturating, so
    /// a mismatched base degrades to the cumulative view instead of
    /// wrapping). This is how [`NetRoundReport`] reports per-round
    /// reactor work from a session-lived reactor.
    ///
    /// [`NetRoundReport`]: crate::coordinator::NetRoundReport
    #[must_use]
    pub fn delta_since(self, base: ReactorStats) -> ReactorStats {
        ReactorStats {
            polls: self.polls.saturating_sub(base.polls),
            events: self.events.saturating_sub(base.events),
            timer_fires: self.timer_fires.saturating_sub(base.timer_fires),
        }
    }
}

/// The event loop facade the coordinator drives: epoll + timer wheel +
/// loopback waker, with wake-up accounting and (optionally) a metrics
/// scrape endpoint serviced on the same epoll loop.
#[derive(Debug)]
pub struct Reactor {
    poller: Poller,
    wheel: TimerWheel,
    wake_rx: i32,
    waker: Arc<WakeQueue>,
    /// Wake-up counters (see [`ReactorStats`]).
    pub stats: ReactorStats,
    telemetry: Telemetry,
    /// Pre-resolved registry cells mirroring [`ReactorStats`] — no-op
    /// increments when telemetry is disabled.
    m_polls: Counter,
    m_events: Counter,
    m_timer_fires: Counter,
    metrics: Option<MetricsServer>,
    /// The reactor's memory plane: shared frame reservoir + byte ledger
    /// every registered channel draws an account from.
    pool: BytePool,
}

impl Reactor {
    /// Builds a reactor whose timers run at `tick` granularity, with
    /// telemetry disabled.
    ///
    /// # Errors
    ///
    /// Propagates epoll/pipe creation failures.
    pub fn new(tick: Duration) -> Result<Reactor, NetError> {
        Reactor::with_telemetry(tick, Telemetry::disabled())
    }

    /// Builds a reactor that counts its wake-ups into `telemetry`
    /// (in addition to the always-on [`ReactorStats`]).
    ///
    /// # Errors
    ///
    /// Propagates epoll/pipe creation failures.
    pub fn with_telemetry(tick: Duration, telemetry: Telemetry) -> Result<Reactor, NetError> {
        let poller = Poller::new()?;
        let (rx, tx) = sys::pipe2_nonblocking()?;
        let waker = Arc::new(WakeQueue {
            write_fd: tx,
            ready: Mutex::new(Vec::new()),
        });
        poller.handle().register(rx, WAKE_TOKEN, Interest::READ)?;
        let m_polls = telemetry.counter("dordis_reactor_polls_total", &[]);
        let m_events = telemetry.counter("dordis_reactor_events_total", &[]);
        let m_timer_fires = telemetry.counter("dordis_reactor_timer_fires_total", &[]);
        let pool = BytePool::with_telemetry(0, &telemetry);
        Ok(Reactor {
            poller,
            wheel: TimerWheel::new(tick),
            wake_rx: rx,
            waker,
            stats: ReactorStats::default(),
            telemetry,
            m_polls,
            m_events,
            m_timer_fires,
            metrics: None,
            pool,
        })
    }

    /// A handle to this reactor's shared frame pool / byte ledger.
    /// Channels call this at [`EventedChannel::register`] time to open
    /// their [`ChannelAccount`](crate::pool::ChannelAccount).
    #[must_use]
    pub fn pool(&self) -> BytePool {
        self.pool.clone()
    }

    /// Sets the reactor's ingress byte budget (`0` = unlimited): past
    /// it, charged connections drop their read interest and TCP flow
    /// control paces the peers (see [`crate::pool`]).
    pub fn set_ingress_budget(&self, bytes: u64) {
        self.pool.set_budget(bytes);
    }

    /// The telemetry handle this reactor records into (disabled unless
    /// built via [`Reactor::with_telemetry`]).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Binds a Prometheus scrape endpoint on `addr` and registers it as
    /// just another token on this reactor's epoll loop: GETs are
    /// answered from inside [`Reactor::poll`], with no dedicated thread
    /// and without breaking the `O(events)` wake-up property (a scrape
    /// wake-up delivers at least one counted event). Returns the bound
    /// address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates bind/registration failures.
    pub fn serve_metrics(&mut self, addr: &str) -> Result<std::net::SocketAddr, NetError> {
        use std::os::unix::io::AsRawFd as _;
        let listener = std::net::TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        self.poller.handle().register(
            listener.as_raw_fd(),
            METRICS_LISTENER_TOKEN,
            Interest::READ,
        )?;
        self.metrics = Some(MetricsServer {
            listener,
            conns: BTreeMap::new(),
            next_slot: 0,
            scrapes: self.telemetry.counter("dordis_metrics_scrapes_total", &[]),
        });
        Ok(local)
    }

    /// Handle for fd-backed channels to manage their own registration.
    #[must_use]
    pub fn handle(&self) -> PollerHandle {
        self.poller.handle()
    }

    /// The shared waker for channels without a pollable fd.
    #[must_use]
    pub fn waker(&self) -> Arc<WakeQueue> {
        Arc::clone(&self.waker)
    }

    /// Arms (or re-arms) a deadline for `token`.
    pub fn arm_deadline(&mut self, token: Token, deadline: Instant) {
        self.wheel.schedule(token, deadline);
    }

    /// Disarms `token`'s deadline.
    pub fn cancel_deadline(&mut self, token: Token) {
        self.wheel.cancel(token);
    }

    /// One event-loop turn: blocks until readiness, a wake, or the
    /// earliest of (`max_wait`, the next armed deadline); then fills
    /// `events` with readiness and `expired` with due deadline tokens.
    /// Both output vectors are cleared first.
    ///
    /// # Errors
    ///
    /// Propagates poller failures.
    pub fn poll(
        &mut self,
        events: &mut Vec<Event>,
        expired: &mut Vec<Token>,
        max_wait: Duration,
    ) -> Result<(), NetError> {
        events.clear();
        expired.clear();
        let now = Instant::now();
        let mut wait = max_wait;
        if let Some(next) = self.wheel.next_deadline() {
            wait = wait.min(next.saturating_duration_since(now));
        }
        self.stats.polls += 1;
        self.m_polls.inc();
        self.poller.wait(events, Some(wait))?;
        // Translate waker hits into readable events for queued tokens.
        let mut woke = false;
        events.retain(|ev| {
            if ev.token == WAKE_TOKEN {
                woke = true;
                false
            } else {
                true
            }
        });
        if woke {
            let mut buf = [0u8; 64];
            while let Ok(n) = sys::read(self.wake_rx, &mut buf) {
                if n < buf.len() {
                    break;
                }
            }
            let mut tokens = Vec::new();
            self.waker.drain(&mut tokens);
            tokens.sort_unstable();
            tokens.dedup();
            for token in tokens {
                events.push(Event {
                    token,
                    readable: true,
                    writable: false,
                    closed: false,
                });
            }
        }
        self.wheel.advance(Instant::now(), expired);
        // Count events *before* filtering scrape traffic out: a poll
        // woken only by a scrape still delivered >= 1 counted event, so
        // the `polls = O(events)` accounting the scale tests assert
        // stays sound with the endpoint enabled.
        self.stats.events += events.len() as u64;
        self.stats.timer_fires += expired.len() as u64;
        self.m_events.add(events.len() as u64);
        self.m_timer_fires.add(expired.len() as u64);
        if let Some(server) = self.metrics.as_mut() {
            let handle = self.poller.handle();
            let mut mine = Vec::new();
            events.retain(|ev| {
                let is_metrics =
                    ev.token == METRICS_LISTENER_TOKEN || server.conns.contains_key(&ev.token.0);
                if is_metrics {
                    mine.push(*ev);
                }
                !is_metrics
            });
            for ev in mine {
                server.service(ev, handle, &self.telemetry);
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Metrics scrape endpoint.
// ---------------------------------------------------------------------

/// One in-flight scrape connection: request bytes accumulate in `buf`
/// until the header terminator arrives, then `out[written..]` drains
/// under write readiness.
#[derive(Debug)]
struct MetricsConn {
    stream: std::net::TcpStream,
    buf: Vec<u8>,
    out: Vec<u8>,
    written: usize,
}

/// The `--metrics-addr` endpoint: a non-blocking listener plus its
/// connections, all keyed into the reactor's own epoll instance, so
/// answering a Prometheus GET is just more events on the one loop.
#[derive(Debug)]
struct MetricsServer {
    listener: std::net::TcpListener,
    conns: BTreeMap<u64, MetricsConn>,
    next_slot: u64,
    scrapes: Counter,
}

/// Requests larger than this are dropped — a scrape GET is < 1 KiB.
const METRICS_REQUEST_MAX: usize = 16 * 1024;

impl MetricsServer {
    /// Advances whatever the event makes possible: accepts on the
    /// listener token, reads/responds/drains on connection tokens.
    /// Connections are dropped when served or broken; closing the fd
    /// deregisters it from epoll implicitly.
    fn service(&mut self, ev: Event, handle: PollerHandle, telemetry: &Telemetry) {
        use std::io::{Read as _, Write as _};
        use std::os::unix::io::AsRawFd as _;

        if ev.token == METRICS_LISTENER_TOKEN {
            // Drain the accept backlog; WouldBlock (and any transient
            // accept error) ends the burst.
            while let Ok((stream, _)) = self.listener.accept() {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                // Slots recycle modulo 2^16 — far more simultaneous
                // scrapes than any deployment has, and stale tokens
                // cannot collide because dead connections leave the
                // map.
                let tok = METRICS_CONN_BASE + (self.next_slot & 0xFFFF);
                self.next_slot += 1;
                if handle
                    .register(stream.as_raw_fd(), Token(tok), Interest::READ)
                    .is_ok()
                {
                    self.conns.insert(
                        tok,
                        MetricsConn {
                            stream,
                            buf: Vec::new(),
                            out: Vec::new(),
                            written: 0,
                        },
                    );
                }
            }
            return;
        }

        let tok = ev.token.0;
        let scrapes = self.scrapes.clone();
        let Some(conn) = self.conns.get_mut(&tok) else {
            return;
        };
        let mut done = false;
        if ev.readable && conn.out.is_empty() {
            let mut tmp = [0u8; 1024];
            loop {
                match conn.stream.read(&mut tmp) {
                    Ok(0) => {
                        done = true;
                        break;
                    }
                    Ok(n) => {
                        conn.buf.extend_from_slice(&tmp[..n]);
                        if conn.buf.len() > METRICS_REQUEST_MAX {
                            done = true;
                            break;
                        }
                        if conn.buf.windows(4).any(|w| w == b"\r\n\r\n") {
                            let body = telemetry.render_prometheus();
                            conn.out = format!(
                                "HTTP/1.1 200 OK\r\n\
                                 Content-Type: text/plain; version=0.0.4\r\n\
                                 Content-Length: {}\r\n\
                                 Connection: close\r\n\r\n{body}",
                                body.len()
                            )
                            .into_bytes();
                            scrapes.inc();
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        done = true;
                        break;
                    }
                }
            }
        }
        if !done && !conn.out.is_empty() {
            loop {
                match conn.stream.write(&conn.out[conn.written..]) {
                    Ok(0) => {
                        done = true;
                        break;
                    }
                    Ok(n) => {
                        conn.written += n;
                        if conn.written == conn.out.len() {
                            done = true;
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        let _ = handle.reregister(
                            conn.stream.as_raw_fd(),
                            Token(tok),
                            Interest::READ_WRITE,
                        );
                        break;
                    }
                    Err(_) => {
                        done = true;
                        break;
                    }
                }
            }
        }
        if done || (ev.closed && conn.out.is_empty()) {
            self.conns.remove(&tok);
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        sys::close(self.wake_rx);
    }
}

// ---------------------------------------------------------------------
// EventedChannel.
// ---------------------------------------------------------------------

/// The readiness-driven side of a [`Channel`].
///
/// Before [`register`](EventedChannel::register) is called, the blocking
/// [`Channel`] API behaves exactly as before (clients and the legacy
/// poll-sweep coordinator use it unchanged). After registration the
/// channel becomes non-blocking: `send` enqueues into a backpressure
/// buffer and flushes opportunistically, `try_recv` reassembles frames
/// from whatever bytes are available, and `try_flush` drains the buffer
/// under write readiness.
pub trait EventedChannel: Channel {
    /// Registers (or re-keys) this channel with the reactor under
    /// `token` and switches it to non-blocking operation. Calling again
    /// with a new token re-registers — the join loop uses this to swap a
    /// provisional token for the authenticated client id.
    ///
    /// # Errors
    ///
    /// Propagates registration failures.
    fn register(&mut self, reactor: &mut Reactor, token: Token) -> Result<(), NetError>;

    /// Detaches this channel from whatever reactor it is registered
    /// with, clearing the stored registration so the next
    /// [`register`](EventedChannel::register) call binds fresh. This is
    /// how a session hands a connection to a *different* reactor (a
    /// shard's) and back: re-registering without deregistering would
    /// re-key the fd on the *old* reactor's poller. Channels with no
    /// registration state need not implement it.
    ///
    /// # Errors
    ///
    /// Propagates deregistration failures.
    fn deregister(&mut self) -> Result<(), NetError> {
        Ok(())
    }

    /// Non-blocking receive: the next fully reassembled frame, or `None`
    /// when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] once the peer is gone *and* every buffered
    /// frame has been returned; codec errors for oversized frames.
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, NetError>;

    /// Drains backlogged writes as far as readiness allows. `Ok(true)`
    /// means the outbox is empty.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] when the peer is gone.
    fn try_flush(&mut self) -> Result<bool, NetError>;

    /// Whether backlogged bytes are waiting on write readiness.
    fn wants_write(&self) -> bool;

    /// Administratively holds (or releases) this connection's ingress.
    /// While held, read interest stays dropped regardless of the byte
    /// account's thresholds, and release re-arms it immediately — the
    /// coordinator's budget-driven admission window uses this to bound
    /// how many clients stream a bulk upload concurrently. Transports
    /// without evented flow control may ignore it (the default): a
    /// hold is a memory optimization, never a correctness requirement.
    ///
    /// # Errors
    ///
    /// Propagates poller re-registration failures.
    fn set_ingress_hold(&mut self, hold: bool) -> Result<(), NetError> {
        let _ = hold;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::time::Duration;

    #[test]
    fn waker_turns_queue_into_events() {
        let mut r = Reactor::new(Duration::from_millis(5)).unwrap();
        let w = r.waker();
        let t = std::thread::spawn(move || {
            w.wake(Token(7));
            w.wake(Token(9));
            w.wake(Token(7));
        });
        t.join().unwrap();
        let (mut events, mut expired) = (Vec::new(), Vec::new());
        r.poll(&mut events, &mut expired, Duration::from_secs(2))
            .unwrap();
        let mut tokens: Vec<u64> = events.iter().map(|e| e.token.0).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, vec![7, 9], "deduped wake tokens");
        assert!(events.iter().all(|e| e.readable));
        assert!(expired.is_empty());
    }

    #[test]
    fn timer_wheel_fires_once_and_rearms() {
        let mut r = Reactor::new(Duration::from_millis(2)).unwrap();
        r.arm_deadline(Token(1), Instant::now() + Duration::from_millis(20));
        let (mut events, mut expired) = (Vec::new(), Vec::new());
        let start = Instant::now();
        loop {
            r.poll(&mut events, &mut expired, Duration::from_millis(100))
                .unwrap();
            if !expired.is_empty() {
                break;
            }
            assert!(
                start.elapsed() < Duration::from_secs(2),
                "timer never fired"
            );
        }
        assert_eq!(expired, vec![Token(1)]);
        assert!(
            start.elapsed() >= Duration::from_millis(18),
            "fired early: {:?}",
            start.elapsed()
        );
        // Cancelled timers stay silent.
        r.arm_deadline(Token(2), Instant::now() + Duration::from_millis(10));
        r.cancel_deadline(Token(2));
        r.poll(&mut events, &mut expired, Duration::from_millis(40))
            .unwrap();
        assert!(expired.is_empty(), "{expired:?}");
    }

    #[test]
    fn far_deadlines_survive_wheel_revolutions() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        // Beyond one revolution of the 512-slot wheel.
        let far = Instant::now() + Duration::from_millis(700);
        w.schedule(Token(3), far);
        let mut out = Vec::new();
        w.advance(Instant::now() + Duration::from_millis(600), &mut out);
        assert!(out.is_empty(), "fired {out:?} before its deadline");
        w.advance(Instant::now() + Duration::from_millis(800), &mut out);
        assert_eq!(out, vec![Token(3)]);
    }

    #[test]
    fn metrics_endpoint_answers_on_the_reactor_loop() {
        use std::io::Read as _;

        let telemetry = Telemetry::enabled();
        telemetry
            .counter("demo_total", &[("stage", "Setup")])
            .add(3);
        let mut r = Reactor::with_telemetry(Duration::from_millis(2), telemetry).unwrap();
        let addr = r.serve_metrics("127.0.0.1:0").unwrap();

        let scraper = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut page = String::new();
            s.read_to_string(&mut page).unwrap();
            page
        });

        // Drive the loop until the scraper's connection has been
        // accepted, read, and answered — all inside poll().
        let (mut events, mut expired) = (Vec::new(), Vec::new());
        let start = Instant::now();
        while !scraper.is_finished() {
            r.poll(&mut events, &mut expired, Duration::from_millis(20))
                .unwrap();
            assert!(
                events.is_empty(),
                "scrape traffic leaked to the coordinator: {events:?}"
            );
            assert!(start.elapsed() < Duration::from_secs(5), "scrape hung");
        }
        let page = scraper.join().unwrap();
        assert!(page.starts_with("HTTP/1.1 200 OK\r\n"), "{page}");
        assert!(page.contains("demo_total{stage=\"Setup\"} 3"), "{page}");
        assert!(page.contains("dordis_reactor_polls_total"), "{page}");

        // The scrape was counted, and polls stayed O(events).
        let snap = r.telemetry().snapshot().unwrap();
        assert_eq!(snap.get("dordis_metrics_scrapes_total"), 1);
        assert!(
            r.stats.polls <= r.stats.events + r.stats.timer_fires + 16,
            "polls {} vs events {} + fires {}",
            r.stats.polls,
            r.stats.events,
            r.stats.timer_fires
        );
    }

    #[test]
    fn poller_reports_tcp_readiness() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        use std::os::unix::io::AsRawFd as _;
        poller
            .handle()
            .register(server.as_raw_fd(), Token(42), Interest::READ)
            .unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "spurious readiness: {events:?}");

        client.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, Token(42));
        assert!(events[0].readable && !events[0].closed);

        drop(client);
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.closed), "{events:?}");
    }
}
