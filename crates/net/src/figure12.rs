//! The shared Figure 12 experiment harness: a loopback round with
//! injected per-stage latency (bandwidth-throttled client uplinks +
//! emulated per-chunk server compute), plus the analytic stage models
//! that let the §4.2 planner choose the chunk count for exactly the
//! costs being injected.
//!
//! Both the `pipeline_overlap` regression test and the `chunked_round`
//! bench drive this one definition, so the experiment they describe —
//! and its constants — cannot drift apart.

use std::time::{Duration, Instant};

use dordis_pipeline::perfmodel::StageModel;
use dordis_pipeline::planner::plan;
use dordis_pipeline::Resource;
use dordis_secagg::client::ClientInput;
use dordis_secagg::graph::MaskingGraph;
use dordis_secagg::{RoundParams, ThreatModel};

use crate::coordinator::{run_coordinator, CoordinatorConfig, NetRoundReport};
use crate::runtime::{run_client, ClientOptions};
use crate::transport::{LoopbackHub, ThrottledChannel};

/// One injected-latency overlap experiment: its round shape and its
/// per-stage costs.
#[derive(Clone, Copy, Debug)]
pub struct OverlapScenario {
    /// Model dimension `d`.
    pub dim: usize,
    /// Sampled client count.
    pub clients: u32,
    /// SecAgg threshold.
    pub threshold: usize,
    /// Ring bit width.
    pub bit_width: u32,
    /// Simulated uplink bandwidth per client (the comm stage).
    pub uplink_bytes_per_sec: u64,
    /// Emulated whole-vector server aggregation cost (the s-comp
    /// stage), injected per chunk proportionally to chunk size.
    pub compute: Duration,
    /// Per-chunk intervention overhead `β₂` fed to the planner
    /// (framing + poll granularity), seconds per chunk of depth.
    pub per_chunk_overhead: f64,
}

impl OverlapScenario {
    /// The default loopback experiment: upload ≈ compute ≈ 200 ms, so
    /// pipelining can overlap most of one of them.
    #[must_use]
    pub fn default_loopback() -> OverlapScenario {
        OverlapScenario {
            dim: 50_000,
            clients: 4,
            threshold: 3,
            bit_width: 16,
            uplink_bytes_per_sec: 500_000,
            compute: Duration::from_millis(200),
            per_chunk_overhead: 0.004,
        }
    }

    fn params(&self) -> RoundParams {
        RoundParams {
            round: 1,
            clients: (0..self.clients).collect(),
            threshold: self.threshold,
            bit_width: self.bit_width,
            vector_len: self.dim,
            noise_components: 0,
            threat_model: ThreatModel::SemiHonest,
            graph: MaskingGraph::Complete,
        }
    }

    /// Analytic per-stage models of the injected costs — what the
    /// paper's offline profiler would fit: comm `τ(m) = upload/m + β₂m`,
    /// s-comp `τ(m) = compute/m + β₂m`.
    #[must_use]
    pub fn models(&self) -> (Vec<StageModel>, Vec<Resource>) {
        let masked_bytes = 4.0 + (self.dim as f64 * f64::from(self.bit_width) / 8.0);
        let upload_secs = masked_bytes / self.uplink_bytes_per_sec as f64;
        let comm = StageModel {
            beta1: upload_secs / self.dim as f64,
            beta2: self.per_chunk_overhead,
            beta3: 0.0,
            d: self.dim as f64,
        };
        let scomp = StageModel {
            beta1: self.compute.as_secs_f64() / self.dim as f64,
            beta2: self.per_chunk_overhead,
            beta3: 0.0,
            d: self.dim as f64,
        };
        (vec![comm, scomp], vec![Resource::Comm, Resource::SComp])
    }

    /// The §4.2 planner's chunk count for this scenario's costs.
    #[must_use]
    pub fn planner_chunks(&self) -> usize {
        let (models, resources) = self.models();
        plan(&models, &resources, 20).chunks
    }

    /// Runs one full round at the given chunk count over a loopback
    /// transport with the scenario's latency injected; returns the
    /// report and the coordinator's wall-clock time.
    ///
    /// # Panics
    ///
    /// Panics on any coordinator/client failure (harness, not
    /// production).
    #[must_use]
    pub fn timed_round(&self, chunks: usize) -> (NetRoundReport, Duration) {
        let (hub, mut acceptor) = LoopbackHub::new();
        let mut handles = Vec::new();
        for id in 0..self.clients {
            let hub = hub.clone();
            let scenario = *self;
            handles.push(std::thread::spawn(move || {
                let inner = hub.connect(&format!("c{id}")).expect("connect");
                let mut chan = ThrottledChannel::new(
                    Box::new(inner),
                    scenario.uplink_bytes_per_sec,
                    Duration::ZERO,
                );
                let opts = ClientOptions {
                    id,
                    rng_seed: 5,
                    fail: None,
                    recv_timeout: Duration::from_secs(30),
                    silent_linger: Duration::from_secs(1),
                };
                let mask = (1u64 << scenario.bit_width) - 1;
                let input = ClientInput {
                    vector: (0..scenario.dim)
                        .map(|i| (u64::from(id) * 31 + i as u64) & mask)
                        .collect(),
                    noise_seeds: Vec::new(),
                };
                run_client(&mut chan, &opts, move |_| Ok(input), |_| None)
            }));
        }
        let start = Instant::now();
        let report = run_coordinator(
            &mut acceptor,
            &CoordinatorConfig::new(
                self.params(),
                Duration::from_secs(10),
                Duration::from_secs(10),
                chunks,
                Some(self.compute),
            ),
        )
        .expect("coordinator");
        let elapsed = start.elapsed();
        for h in handles {
            h.join().expect("client thread").expect("client run");
        }
        (report, elapsed)
    }
}
