#!/usr/bin/env bash
# Failover smoke: a replicated coordinator pair over real TCP, the
# primary SIGKILLed mid-session, eight clients redialing with
# --failover. Asserts the standby promotes, finishes the session, and
# produces the same aggregate as an uninterrupted reference run.
#
# The CLI demo path carries no privacy ledger, so epsilon bit-equality
# after failover is asserted by the in-process test matrix
# (crates/core/tests/failover.rs); this smoke pins the operator-facing
# path: processes, sockets, kill -9, and the printed aggregates.
#
# Usage: scripts/failover_smoke.sh [path-to-dordis-binary]
set -euo pipefail

BIN=${1:-./target/release/dordis}
DIR=$(mktemp -d failover-smoke.XXXXXX)
cleanup() {
  local pids
  pids=$(jobs -p)
  [ -n "$pids" ] && kill $pids 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

CLIENTS=8
THRESHOLD=5
ROUNDS=50

# --- Reference: one unreplicated session, same cohort and rounds. ----
"$BIN" serve --listen 127.0.0.1:0 --clients $CLIENTS --threshold $THRESHOLD \
  --rounds $ROUNDS > "$DIR/ref_serve.log" 2>&1 &
REF=$!
for _ in $(seq 100); do
  grep -q '^listening on' "$DIR/ref_serve.log" && break
  sleep 0.1
done
RPORT=$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "$DIR/ref_serve.log")
for id in $(seq 0 $((CLIENTS - 1))); do
  "$BIN" join --connect "127.0.0.1:$RPORT" --id "$id" \
    > "$DIR/ref_join$id.log" 2>&1 &
done
wait "$REF"
grep -q "^session complete" "$DIR/ref_serve.log"

# --- Replicated pair: standby first, then the primary dials it. ------
"$BIN" serve --listen 127.0.0.1:17701 --backup 127.0.0.1:17800 \
  --clients $CLIENTS --threshold $THRESHOLD --rounds $ROUNDS \
  --lease-ms 2000 > "$DIR/backup_serve.log" 2>&1 &
BACKUP=$!
for _ in $(seq 100); do
  grep -q '^standby:' "$DIR/backup_serve.log" && break
  sleep 0.1
done
grep -q '^standby:' "$DIR/backup_serve.log"

"$BIN" serve --listen 127.0.0.1:17700 --replica 127.0.0.1:17800 \
  --clients $CLIENTS --threshold $THRESHOLD --rounds $ROUNDS \
  > "$DIR/primary_serve.log" 2>&1 &
PRIMARY=$!

declare -a CLIENT_PIDS
for id in $(seq 0 $((CLIENTS - 1))); do
  "$BIN" join --connect 127.0.0.1:17700 --failover 127.0.0.1:17701 \
    --id "$id" --timeout-ms 10000 > "$DIR/join$id.log" 2>&1 &
  CLIENT_PIDS[$id]=$!
done

# kill -9 the primary as soon as round 2 has committed: mid-session,
# with the bulk of the rounds still owed to the clients.
for _ in $(seq 600); do
  grep -q '^round 2 complete' "$DIR/primary_serve.log" && break
  sleep 0.05
done
grep -q '^round 2 complete' "$DIR/primary_serve.log"
kill -9 "$PRIMARY" 2>/dev/null

wait "$BACKUP"
for id in $(seq 0 $((CLIENTS - 1))); do
  wait "${CLIENT_PIDS[$id]}"
  grep -q "^client $id: session ended" "$DIR/join$id.log"
done

grep -q '^view change: promoted' "$DIR/backup_serve.log"
grep -q "^round $ROUNDS complete" "$DIR/backup_serve.log"
grep -q '^session complete' "$DIR/backup_serve.log"

# The aggregate after failover must be bit-equal to the uninterrupted
# reference (demo inputs are deterministic per client id).
REF_SUM=$(grep '^sum' "$DIR/ref_serve.log" | tail -1)
GOT_SUM=$(grep '^sum' "$DIR/backup_serve.log" | tail -1)
if [ "$REF_SUM" != "$GOT_SUM" ]; then
  echo "aggregate mismatch after failover:" >&2
  echo "  reference: $REF_SUM" >&2
  echo "  failover:  $GOT_SUM" >&2
  exit 1
fi

TAKEN_AT=$(sed -n 's/^view change: promoted to view [0-9]* (\([0-9]*\) round(s).*/\1/p' \
  "$DIR/backup_serve.log")
echo "failover smoke OK: primary killed after round $TAKEN_AT," \
  "standby finished rounds $((TAKEN_AT + 1))..$ROUNDS, aggregate bit-equal"
